package sched

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
)

// crashChildEnv carries the journal dir into the child process; its
// presence is what turns TestCrashChild from a skip into the crash body.
const crashChildEnv = "SCHED_CRASH_CHILD_DIR"

// crashChildExit is the child's abrupt exit code, checked by the parent
// so an unrelated child failure cannot masquerade as the scripted crash.
const crashChildExit = 42

// TestCrashChild is not a standalone test: it is the child half of
// TestChildProcessCrashResume. Re-invoked with SCHED_CRASH_CHILD_DIR
// set, it runs a journaled single-worker experiment and dies without
// unwinding — no journal Close, no deferred cleanup — in the middle of
// the fifth unit, first smearing a half-written record onto the journal
// exactly as a process killed mid-append would.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("child-process body for TestChildProcessCrashResume")
	}
	count := 0
	run := func(a design.Assignment, rep int) (map[string]float64, error) {
		count++ // Workers: 1, so a single goroutine runs every unit
		if count == 5 {
			path := filepath.Join(dir, runstore.SanitizeName("sched 2^2")+".jsonl")
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err == nil {
				f.WriteString(`{"experiment":"sched 2^2","row":9,"repl`)
			}
			os.Exit(crashChildExit)
		}
		return deterministicRunner(a, rep)
	}
	s := New(Options{Workers: 1, JournalDir: dir})
	s.Execute(context.Background(), newExperiment(t, 3, run))
	t.Fatal("child should have died mid-run")
}

// TestChildProcessCrashResume is the crash-injection test: it re-executes
// this test binary as a separate process, kills it (via the scripted
// abrupt exit above) mid-run with a torn journal line on disk, then
// reopens the journal and asserts warm start replays exactly the four
// completed units and re-executes only the missing eight — none twice.
func TestChildProcessCrashResume(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child exited cleanly, want a crash; output:\n%s", out)
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok || exitErr.ExitCode() != crashChildExit {
		t.Fatalf("child died with %v, want exit %d; output:\n%s", err, crashChildExit, out)
	}

	// The journal must hold exactly the four units appended before the
	// crash, plus the torn tail the crash smeared.
	j, err := runstore.OpenDir(dir, "sched 2^2")
	if err != nil {
		t.Fatal(err)
	}
	if !j.Torn() {
		t.Error("journal should have had a torn trailing line")
	}
	if j.Len() != 4 {
		t.Errorf("journal holds %d complete units, want 4", j.Len())
	}
	journaled := map[string]bool{}
	recs, err := runstore.Collect(j.Scan())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		journaled[fmt.Sprintf("%s/%d", rec.Hash, rec.Replicate)] = true
	}
	j.Close()

	// Warm start in-process: the journaled units replay, only the
	// missing ones execute, and no unit does both.
	var mu sync.Mutex
	executed := map[string]bool{}
	counting := func(a design.Assignment, rep int) (map[string]float64, error) {
		mu.Lock()
		executed[fmt.Sprintf("%s/%d", runstore.AssignmentHash(a), rep)] = true
		mu.Unlock()
		return deterministicRunner(a, rep)
	}
	s := New(Options{Workers: 4, JournalDir: dir})
	resumed, err := s.Execute(context.Background(), newExperiment(t, 3, counting))
	if err != nil {
		t.Fatal(err)
	}
	st := s.LastStats()
	if st.Replayed != 4 || st.Executed != 8 {
		t.Errorf("resume stats = %+v, want 4 replayed + 8 executed", st)
	}
	for key := range executed {
		if journaled[key] {
			t.Errorf("unit %s survived the crash but was re-executed", key)
		}
	}
	if len(executed)+len(journaled) != 12 {
		t.Errorf("replayed %d + executed %d units, want 12 total", len(journaled), len(executed))
	}

	// The resumed run is indistinguishable from one that never crashed.
	cold, err := harness.Sequential{}.Execute(context.Background(), newExperiment(t, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CSV() != resumed.CSV() || cold.Report() != resumed.Report() {
		t.Error("resumed ResultSet differs from a cold run")
	}
}
