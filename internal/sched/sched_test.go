package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/design"
	"repro/internal/harness"
)

var _ harness.Executor = (*Scheduler)(nil)

// newExperiment builds a deterministic 2^2 x reps experiment whose
// response depends only on (assignment, replicate), so sequential and
// concurrent executions must agree exactly.
func newExperiment(t *testing.T, reps int, run harness.RunFunc) *harness.Experiment {
	t.Helper()
	d, err := design.TwoLevelFull([]design.Factor{
		design.MustFactor("memory", "4MB", "16MB"),
		design.MustFactor("cache", "1KB", "2KB"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Replicates = reps
	if run == nil {
		run = deterministicRunner
	}
	return &harness.Experiment{
		Name: "sched 2^2", Design: d, Responses: []string{"MIPS"}, Run: run,
	}
}

func deterministicRunner(a design.Assignment, rep int) (map[string]float64, error) {
	base := map[string]float64{
		"cache=1KB memory=4MB":  15,
		"cache=2KB memory=4MB":  25,
		"cache=1KB memory=16MB": 45,
		"cache=2KB memory=16MB": 75,
	}[a.String()]
	if base == 0 {
		return nil, fmt.Errorf("unknown assignment %s", a)
	}
	return map[string]float64{"MIPS": base + float64(rep)*0.25}, nil
}

func TestSchedulerMatchesSequentialByteForByte(t *testing.T) {
	seqRS, err := harness.Sequential{}.Execute(context.Background(), newExperiment(t, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 4})
	conRS, err := s.Execute(context.Background(), newExperiment(t, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if seqRS.CSV() != conRS.CSV() {
		t.Errorf("CSV differs:\nsequential:\n%s\nconcurrent:\n%s", seqRS.CSV(), conRS.CSV())
	}
	if seqRS.Report() != conRS.Report() {
		t.Errorf("Report differs:\nsequential:\n%s\nconcurrent:\n%s", seqRS.Report(), conRS.Report())
	}
	st := s.LastStats()
	if st.Units != 12 || st.Executed != 12 || st.Replayed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSchedulerBoundsParallelism(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	run := func(a design.Assignment, rep int) (map[string]float64, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return deterministicRunner(a, rep)
	}
	if _, err := New(Options{Workers: workers}).Execute(context.Background(), newExperiment(t, 4, run)); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent units, workers = %d", p, workers)
	}
	if p := peak.Load(); p < 2 {
		t.Errorf("observed %d concurrent units, expected some overlap", p)
	}
}

func TestSchedulerRetries(t *testing.T) {
	var mu sync.Mutex
	failed := map[string]bool{}
	flaky := func(a design.Assignment, rep int) (map[string]float64, error) {
		key := fmt.Sprintf("%s/%d", a, rep)
		mu.Lock()
		first := !failed[key]
		failed[key] = true
		mu.Unlock()
		if first {
			return nil, errors.New("transient failure")
		}
		return deterministicRunner(a, rep)
	}
	s := New(Options{Workers: 2, Retries: 1})
	rs, err := s.Execute(context.Background(), newExperiment(t, 2, flaky))
	if err != nil {
		t.Fatalf("retries should absorb one failure per unit: %v", err)
	}
	if len(rs.Rows) != 4 {
		t.Errorf("rows = %d", len(rs.Rows))
	}
	if st := s.LastStats(); st.Retried != 8 {
		t.Errorf("Retried = %d, want 8 (one per unit)", st.Retried)
	}

	// Exhausted retries surface the last error.
	always := func(design.Assignment, int) (map[string]float64, error) {
		return nil, errors.New("permanent failure")
	}
	if _, err := New(Options{Workers: 2, Retries: 2}).Execute(context.Background(), newExperiment(t, 1, always)); err == nil {
		t.Error("permanent failure should abort the run")
	} else if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("error should mention attempts: %v", err)
	}
}

func TestSchedulerTimeout(t *testing.T) {
	slow := func(a design.Assignment, rep int) (map[string]float64, error) {
		if a["memory"] == "16MB" {
			time.Sleep(time.Second)
		}
		return deterministicRunner(a, rep)
	}
	s := New(Options{Workers: 4, Timeout: 25 * time.Millisecond})
	_, err := s.Execute(context.Background(), newExperiment(t, 1, slow))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("want timeout error, got %v", err)
	}
}

func TestSchedulerWarmStartSkipsJournaledUnits(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	counted := func(a design.Assignment, rep int) (map[string]float64, error) {
		calls.Add(1)
		return deterministicRunner(a, rep)
	}

	s1 := New(Options{Workers: 4, JournalDir: dir})
	rs1, err := s1.Execute(context.Background(), newExperiment(t, 3, counted))
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.LastStats(); st.Executed != 12 || st.Replayed != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	if calls.Load() != 12 {
		t.Fatalf("cold run calls = %d", calls.Load())
	}

	// Second run, fresh scheduler, same journal dir: everything replays.
	calls.Store(0)
	s2 := New(Options{Workers: 4, JournalDir: dir})
	rs2, err := s2.Execute(context.Background(), newExperiment(t, 3, counted))
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.LastStats(); st.Executed != 0 || st.Replayed != 12 {
		t.Errorf("warm stats = %+v", st)
	}
	if calls.Load() != 0 {
		t.Errorf("warm run executed %d units, want 0", calls.Load())
	}
	if rs1.CSV() != rs2.CSV() || rs1.Report() != rs2.Report() {
		t.Error("replayed ResultSet differs from the original")
	}
}

func TestSchedulerReExecutesWhenJournalLacksResponse(t *testing.T) {
	dir := t.TempDir()
	e := newExperiment(t, 1, nil)
	s := New(Options{Workers: 2, JournalDir: dir})
	if _, err := s.Execute(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	// Same journal, but the experiment now declares an extra response the
	// journaled records lack: every unit must re-execute.
	e2 := newExperiment(t, 1, func(a design.Assignment, rep int) (map[string]float64, error) {
		resp, err := deterministicRunner(a, rep)
		if err != nil {
			return nil, err
		}
		resp["watts"] = 100
		return resp, nil
	})
	e2.Responses = []string{"MIPS", "watts"}
	s2 := New(Options{Workers: 2, JournalDir: dir})
	if _, err := s2.Execute(context.Background(), e2); err != nil {
		t.Fatal(err)
	}
	if st := s2.LastStats(); st.Replayed != 0 || st.Executed != 4 {
		t.Errorf("stats = %+v, want full re-execution", st)
	}
}
