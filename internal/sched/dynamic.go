package sched

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/runstore"
)

// Controller decides, per design cell, how much replication is enough —
// the sequential-analysis hook that turns the scheduler from a fixed
// rows x replicates work list into a dynamic work generator. The
// scheduler owns the mechanics (workers, retries, journaling, result
// assembly); the controller owns the policy (stopping rule, budget
// envelope, priorities). internal/adaptive provides the CI-targeted
// implementation.
//
// Cells are identified by the opaque key runstore.CellKey(experiment,
// hash), so one controller can serve several experiments without state
// bleeding across them.
//
// Determinism contract: the scheduler only calls Target at batch
// boundaries — when every replicate it has scheduled for the cell has
// been observed — and replicates of one cell always form the contiguous
// prefix 0..n-1. A controller whose decisions depend only on the
// observed values of the cell under decision therefore yields the same
// replicate count per cell regardless of worker count or completion
// order. Implementations must be safe for concurrent use: warm-start
// replay observes cells from one goroutine, but a controller may be
// shared by schedulers running in parallel.
type Controller interface {
	// Observe ingests one completed replicate of a cell — live or
	// journal-replayed — restricted to the experiment's declared
	// responses.
	Observe(cell string, replicate int, responses map[string]float64)
	// Target returns the total number of replicates the cell should
	// reach, given that observed have completed. A value <= observed
	// stops the cell; a larger value schedules the difference as the
	// next batch. The first call (observed may be 0 on a cold start)
	// must return at least 1 — every cell needs one measurement to say
	// anything at all.
	Target(cell string, observed int) int
	// Priority reports whether the cell should be scheduled ahead of
	// non-priority cells (e.g. a cell the regression gate flagged).
	Priority(cell string) bool
	// Explain renders a short human-readable account of the cell's
	// state — achieved precision, applied target, stop reason — for
	// budget reports.
	Explain(cell string) string
}

// cellState tracks one design cell through a dynamic execution.
type cellState struct {
	unit      // row, a, hash of the cell (rep field unused)
	key       string
	reps      []map[string]float64 // indexed by replicate, grown batch by batch
	scheduled int                  // replicates handed to the pool (incl. replayed)
	completed int                  // replicates observed (incl. replayed)
	replayed  int                  // journal restores among completed
	done      bool                 // controller stopped the cell
}

// outcome is one completed live unit coming back from a worker.
type outcome struct {
	u       unit
	resp    map[string]float64
	retried int
	err     error
}

// declaredResponses filters a response map down to the experiment's
// declared responses, so controller decisions cannot hinge on
// undeclared debug outputs a runner happens to emit.
func declaredResponses(e *harness.Experiment, resp map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(e.Responses))
	for _, name := range e.Responses {
		out[name] = resp[name]
	}
	return out
}

// executeDynamic is Execute's controller-driven path. The fixed path
// enumerates every unit up front; here the controller grows each cell
// batch by batch until its stopping rule is met, while warm-started
// replicates replay from the journal and count against the budget.
// Retry, timeout, journaling, and design-ordered result assembly all
// behave exactly as on the fixed path.
func (s *Scheduler) executeDynamic(ctx context.Context, e *harness.Experiment, journal runstore.Store, ctrl Controller) (*harness.ResultSet, error) {
	rows := e.Design.NumRuns()
	cells := make([]*cellState, rows)
	var stats Stats
	stats.FixedBudget = rows * e.Design.Replicates
	for r := 0; r < rows; r++ {
		a, err := e.Design.Assignment(r)
		if err != nil {
			return nil, err
		}
		hash := runstore.AssignmentHash(a)
		c := &cellState{unit: unit{row: r, a: a, hash: hash}, key: runstore.CellKey(e.Name, hash)}
		if journal != nil {
			// Warm start: replay the contiguous replicate prefix that
			// still satisfies the response contract, feeding each
			// restored replicate to the controller so a resumed run
			// keeps the budget it already spent.
			n := journal.ReplicateCount(e.Name, hash)
			for rep := 0; rep < n; rep++ {
				rec, ok := journal.Lookup(e.Name, hash, rep)
				if !ok || harness.CheckResponses(e, rec.Responses) != nil {
					break
				}
				c.reps = append(c.reps, rec.Responses)
				ctrl.Observe(c.key, rep, declaredResponses(e, rec.Responses))
				stats.Replayed++
				c.replayed++
			}
			c.completed = len(c.reps)
			c.scheduled = len(c.reps)
		}
		cells[r] = c
	}

	// Initial targets for every cell first — Target is where a
	// controller notices that a warm-started cell already shifted
	// against its baseline and flags it — then feed priority cells
	// ahead of the rest, both groups in stable row order.
	if m := s.met; m != nil {
		m.replayed.Add(int64(stats.Replayed))
	}
	batches := make([][]unit, rows)
	for r, c := range cells {
		target := ctrl.Target(c.key, c.completed)
		if target <= c.completed && c.completed > 0 {
			c.done = true
			if m := s.met; m != nil {
				m.adaptStop.Inc()
			}
			continue
		}
		if m := s.met; m != nil {
			m.adaptGrow.Inc()
		}
		if target < 1 {
			target = 1 // a cell with no measurements can claim nothing
		}
		for rep := c.scheduled; rep < target; rep++ {
			batches[r] = append(batches[r], unit{row: c.row, rep: rep, a: c.a, hash: c.hash})
			c.reps = append(c.reps, nil)
		}
		c.scheduled = target
	}
	var queue []unit
	for pass := 0; pass < 2; pass++ {
		for r, c := range cells {
			if len(batches[r]) > 0 && ctrl.Priority(c.key) == (pass == 0) {
				queue = append(queue, batches[r]...)
			}
		}
	}

	if err := s.runDynamicPool(ctx, e, journal, ctrl, cells, queue, &stats); err != nil {
		return nil, err
	}

	rs := &harness.ResultSet{Experiment: e}
	cellStats := make([]harness.CellStats, 0, rows)
	for _, c := range cells {
		rs.Rows = append(rs.Rows, harness.ResultRow{Assignment: c.a, Reps: c.reps[:c.completed]})
		cellStats = append(cellStats, harness.CellStats{
			Row:        c.row,
			Assignment: c.a,
			Executed:   c.completed - c.replayed,
			Replayed:   c.replayed,
			Note:       ctrl.Explain(c.key),
		})
	}
	stats.Units = stats.Executed + stats.Replayed
	s.mu.Lock()
	s.last = stats
	s.lastCells = cellStats
	s.mu.Unlock()
	return rs, nil
}

// runDynamicPool drives the dynamic queue through a worker pool. Unlike
// the fixed pool there is no up-front work list: a single dispatcher
// goroutine (this one) owns the queue, the cell states, and every
// controller call at a batch boundary, so no lock is needed on any of
// them; workers only execute units and journal them. A done context
// stops work generation at the next dispatch boundary: the queue is
// dropped, in-flight units drain (journaled as they complete), and the
// context error is returned — the journal stays valid and
// warm-startable, holding exactly the completed units.
func (s *Scheduler) runDynamicPool(ctx context.Context, e *harness.Experiment, journal runstore.Store, ctrl Controller, cells []*cellState, queue []unit, stats *Stats) error {
	if len(queue) == 0 {
		return nil
	}
	// No clamp to the initial queue length: the queue grows as the
	// controller extends cells, so a small initial batch says nothing
	// about later breadth. Surplus workers idle on the channel.
	workers := s.opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	jobs := make(chan unit)
	done := make(chan outcome)
	for w := 0; w < workers; w++ {
		go func() {
			for u := range jobs {
				start := time.Now()
				resp, retried, err := s.runWithRetry(ctx, e, u)
				if m := s.met; m != nil {
					m.unitSeconds.Observe(time.Since(start).Seconds())
				}
				if err == nil && journal != nil {
					err = journal.Append(runstore.Record{
						Experiment: e.Name,
						Row:        u.row,
						Replicate:  u.rep,
						Hash:       u.hash,
						Assignment: u.a,
						Responses:  resp,
					})
				}
				done <- outcome{u: u, resp: resp, retried: retried, err: err}
			}
		}()
	}
	defer close(jobs)

	var firstErr error
	canceled := false
	ctxDone := ctx.Done()
	inflight := 0
	// The dispatcher owns the queue, so a plain Set per iteration keeps
	// the gauge exact without any coordination.
	if m := s.met; m != nil {
		defer m.queueDepth.Set(0)
	}
	for inflight > 0 || (firstErr == nil && !canceled && len(queue) > 0) {
		if m := s.met; m != nil {
			m.queueDepth.Set(int64(len(queue)))
		}
		var feed chan unit
		var next unit
		if firstErr == nil && !canceled && len(queue) > 0 {
			feed = jobs
			next = queue[0]
		}
		select {
		case <-ctxDone:
			// Disarm so the drain below blocks on completions instead of
			// spinning on the already-closed done channel.
			ctxDone = nil
			canceled = true
			queue = nil // stop generating work, drain what is in flight
		case feed <- next:
			queue = queue[1:]
			inflight++
		case out := <-done:
			inflight--
			stats.Retried += out.retried
			if m := s.met; m != nil && out.retried > 0 {
				m.retried.Add(int64(out.retried))
			}
			if out.err != nil {
				if ctx.Err() != nil {
					// An attempt abandoned by cancellation is not a unit
					// failure; the drain below reports the interruption.
					canceled, queue = true, nil
					continue
				}
				if firstErr == nil {
					firstErr = out.err
					queue = nil // stop generating work, drain what is in flight
				}
				continue
			}
			c := cells[out.u.row]
			c.reps[out.u.rep] = out.resp
			ctrl.Observe(c.key, out.u.rep, declaredResponses(e, out.resp))
			c.completed++
			stats.Executed++
			if m := s.met; m != nil {
				m.executed.Inc()
			}
			if c.done || c.completed < c.scheduled {
				continue
			}
			// Batch boundary: every scheduled replicate of the cell has
			// been observed — ask the controller for the next batch.
			target := ctrl.Target(c.key, c.completed)
			if target <= c.completed {
				c.done = true
				if m := s.met; m != nil {
					m.adaptStop.Inc()
				}
				continue
			}
			if m := s.met; m != nil {
				m.adaptGrow.Inc()
			}
			grown := make([]unit, 0, target-c.scheduled)
			for rep := c.scheduled; rep < target; rep++ {
				grown = append(grown, unit{row: c.row, rep: rep, a: c.a, hash: c.hash})
				c.reps = append(c.reps, nil)
			}
			c.scheduled = target
			if ctrl.Priority(c.key) {
				queue = append(grown, queue...)
			} else {
				queue = append(queue, grown...)
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if canceled || ctx.Err() != nil {
		return fmt.Errorf("sched: %s interrupted: %w (journal holds every completed unit; re-run to resume)", e.Name, context.Cause(ctx))
	}
	for _, c := range cells {
		if c.completed == 0 {
			return fmt.Errorf("sched: cell %s completed no replicates", c.a)
		}
	}
	return nil
}
