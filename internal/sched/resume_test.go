package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
)

// TestCrashResume simulates a run killed mid-journal: the first pass
// fails partway through (leaving a journal with some completed units and
// a torn trailing line, as a real crash during an append would), then a
// second pass over the same journal must replay every completed unit
// without re-executing it and produce a ResultSet byte-identical to a
// cold sequential run.
func TestCrashResume(t *testing.T) {
	dir := t.TempDir()
	const reps = 3

	// Pass 1: the 16MB/2KB corner always crashes; everything else
	// completes and is journaled before the failure propagates.
	crashing := func(a design.Assignment, rep int) (map[string]float64, error) {
		if a["memory"] == "16MB" && a["cache"] == "2KB" {
			return nil, errors.New("simulated crash")
		}
		return deterministicRunner(a, rep)
	}
	s1 := New(Options{Workers: 2, JournalDir: dir})
	if _, err := s1.Execute(context.Background(), newExperiment(t, reps, crashing)); err == nil {
		t.Fatal("pass 1 should fail")
	}

	// Find the journal and note which units it completed.
	j, err := runstore.OpenDir(dir, "sched 2^2")
	if err != nil {
		t.Fatal(err)
	}
	journaled := map[string]bool{}
	recs, err := runstore.Collect(j.Scan())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		journaled[fmt.Sprintf("%s/%d", rec.Hash, rec.Replicate)] = true
	}
	path := j.Path()
	j.Close()
	if len(journaled) == 0 {
		t.Fatal("pass 1 should have journaled at least one completed unit")
	}
	if len(journaled) >= 4*reps {
		t.Fatalf("pass 1 journaled %d units, the crashing corner should be absent", len(journaled))
	}

	// Tear the journal tail, as a kill -9 mid-append would.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"experiment":"sched 2^2","row":3,"repl`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Pass 2: healthy runner. Completed units must be replayed, not
	// re-executed.
	var mu sync.Mutex
	executed := map[string]bool{}
	healthy := func(a design.Assignment, rep int) (map[string]float64, error) {
		mu.Lock()
		executed[fmt.Sprintf("%s/%d", runstore.AssignmentHash(a), rep)] = true
		mu.Unlock()
		return deterministicRunner(a, rep)
	}
	s2 := New(Options{Workers: 4, JournalDir: dir})
	resumed, err := s2.Execute(context.Background(), newExperiment(t, reps, healthy))
	if err != nil {
		t.Fatal(err)
	}
	st := s2.LastStats()
	if st.Replayed != len(journaled) {
		t.Errorf("Replayed = %d, want %d (every journaled unit)", st.Replayed, len(journaled))
	}
	if st.Executed != 4*reps-len(journaled) {
		t.Errorf("Executed = %d, want %d", st.Executed, 4*reps-len(journaled))
	}
	for key := range executed {
		if journaled[key] {
			t.Errorf("unit %s was journaled but re-executed", key)
		}
	}
	for key := range journaled {
		if executed[key] {
			t.Errorf("unit %s was replayed and also executed", key)
		}
	}

	// The resumed ResultSet must be byte-identical to a cold sequential
	// run of the same experiment.
	cold, err := harness.Sequential{}.Execute(context.Background(), newExperiment(t, reps, nil))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CSV() != resumed.CSV() {
		t.Errorf("CSV differs after resume:\ncold:\n%s\nresumed:\n%s", cold.CSV(), resumed.CSV())
	}
	if cold.Report() != resumed.Report() {
		t.Errorf("Report differs after resume:\ncold:\n%s\nresumed:\n%s", cold.Report(), resumed.Report())
	}

	// Pass 3: nothing left to execute.
	s3 := New(Options{Workers: 4, JournalDir: dir})
	if _, err := s3.Execute(context.Background(), newExperiment(t, reps, healthy)); err != nil {
		t.Fatal(err)
	}
	if st := s3.LastStats(); st.Executed != 0 || st.Replayed != 4*reps {
		t.Errorf("pass 3 stats = %+v, want pure replay", st)
	}
}
