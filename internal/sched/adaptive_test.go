package sched

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
)

var _ harness.BudgetReporter = (*Scheduler)(nil)

// mixedVariance builds a 2-cell experiment where one cell is nearly
// noise-free and the other is deterministic but noisy: the adaptive
// controller should stop the stable cell at the minimum and spend the
// budget on the noisy one.
func mixedVariance(t testing.TB, reps int) *harness.Experiment {
	t.Helper()
	d, err := design.FullFactorial([]design.Factor{
		design.MustFactor("noise", "lo", "hi"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Replicates = reps
	return &harness.Experiment{
		Name: "mixed-variance", Design: d, Responses: []string{"ms"},
		Run: mixedVarianceRunner,
	}
}

// mixedVarianceRunner is deterministic in (assignment, replicate): the
// lo cell jitters by ±0.1%, the hi cell by ±20%.
func mixedVarianceRunner(a design.Assignment, rep int) (map[string]float64, error) {
	amp := 0.001
	if a["noise"] == "hi" {
		amp = 0.2
	}
	jitter := math.Sin(float64(rep)*2.399963) * amp // deterministic pseudo-noise
	return map[string]float64{"ms": 100 * (1 + jitter)}, nil
}

// TestAdaptiveEquivalence pins the degenerate case: with min=max=R the
// adaptive scheduler must be indistinguishable from the fixed scheduler
// at R replicates — byte-identical journal, identical CIs and reports.
func TestAdaptiveEquivalence(t *testing.T) {
	const reps = 3
	fixedDir, adaptDir := t.TempDir(), t.TempDir()

	fixed := New(Options{Workers: 1, JournalDir: fixedDir})
	fixedRS, err := fixed.Execute(context.Background(), newExperiment(t, reps, nil))
	if err != nil {
		t.Fatal(err)
	}

	ctrl, err := adaptive.New(adaptive.Options{Min: reps, Max: reps})
	if err != nil {
		t.Fatal(err)
	}
	adapt := New(Options{Workers: 1, JournalDir: adaptDir, Controller: ctrl})
	adaptRS, err := adapt.Execute(context.Background(), newExperiment(t, reps, nil))
	if err != nil {
		t.Fatal(err)
	}

	if fixedRS.CSV() != adaptRS.CSV() {
		t.Errorf("CSV differs:\nfixed:\n%s\nadaptive:\n%s", fixedRS.CSV(), adaptRS.CSV())
	}
	if fixedRS.Report() != adaptRS.Report() {
		t.Errorf("Report differs:\nfixed:\n%s\nadaptive:\n%s", fixedRS.Report(), adaptRS.Report())
	}
	fixedCI, err := fixedRS.CIs("MIPS", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	adaptCI, err := adaptRS.CIs("MIPS", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fixedCI {
		if fixedCI[i] != adaptCI[i] {
			t.Errorf("row %d CI differs: fixed %v adaptive %v", i, fixedCI[i], adaptCI[i])
		}
	}

	read := func(dir string) []byte {
		t.Helper()
		entries, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
		if err != nil || len(entries) != 1 {
			t.Fatalf("journals in %s = %v (err %v)", dir, entries, err)
		}
		data, err := os.ReadFile(entries[0])
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if string(read(fixedDir)) != string(read(adaptDir)) {
		t.Error("adaptive journal is not byte-identical to the fixed journal at min=max=R")
	}

	fs, as := fixed.LastStats(), adapt.LastStats()
	if as.Units != fs.Units || as.Executed != fs.Executed || as.FixedBudget != fs.FixedBudget {
		t.Errorf("stats differ: fixed %+v adaptive %+v", fs, as)
	}
}

// TestAdaptiveSavesReplicates is the mixed-variance acceptance demo:
// the same CI targets with measurably fewer replicates than the fixed
// budget, the savings concentrated on the stable cell.
func TestAdaptiveSavesReplicates(t *testing.T) {
	const fixedReps = 40
	ctrl, err := adaptive.New(adaptive.Options{Rel: 0.05, Min: 3, Max: fixedReps})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 4, Controller: ctrl})
	rs, err := s.Execute(context.Background(), mixedVariance(t, fixedReps))
	if err != nil {
		t.Fatal(err)
	}
	st := s.LastStats()
	if st.FixedBudget != 2*fixedReps {
		t.Fatalf("FixedBudget = %d, want %d", st.FixedBudget, 2*fixedReps)
	}
	if st.Units >= st.FixedBudget/2 {
		t.Errorf("adaptive spent %d of %d replicates — no measurable saving", st.Units, st.FixedBudget)
	}
	cells := s.CellStats()
	if len(cells) != 2 {
		t.Fatalf("CellStats = %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		switch c.Assignment["noise"] {
		case "lo":
			if c.Spent() != 3 {
				t.Errorf("stable cell spent %d replicates, want the minimum 3", c.Spent())
			}
		case "hi":
			if c.Spent() <= 3 {
				t.Errorf("noisy cell spent %d replicates, want more than the minimum", c.Spent())
			}
			// The noisy cell must actually reach the 5% target — the
			// stopping rule trades replicates for precision, not for
			// precision claims it cannot back.
			iv, err := rs.CIs("ms", 0.95)
			if err != nil {
				t.Fatal(err)
			}
			if rel := iv[c.Row].RelHalfWidth(); rel > 0.05 {
				t.Errorf("noisy cell stopped at rel=%.3f > 0.05 with budget to spare", rel)
			}
		}
		if c.Note == "" {
			t.Errorf("cell %s has no budget note", c.Assignment)
		}
	}
	// Every row must hold exactly the replicates the budget says.
	for _, c := range cells {
		if got := len(rs.Rows[c.Row].Reps); got != c.Spent() {
			t.Errorf("row %d has %d reps, CellStats says %d", c.Row, got, c.Spent())
		}
	}
}

// TestAdaptiveWarmStartKeepsBudget journals an adaptive run, then
// re-runs it: every replicate must replay, none execute, and the
// replicate counts per cell must match the first run exactly.
func TestAdaptiveWarmStartKeepsBudget(t *testing.T) {
	dir := t.TempDir()
	newCtrl := func() *adaptive.Controller {
		ctrl, err := adaptive.New(adaptive.Options{Rel: 0.05, Min: 3, Max: 40})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	s1 := New(Options{Workers: 4, JournalDir: dir, Controller: newCtrl()})
	rs1, err := s1.Execute(context.Background(), mixedVariance(t, 40))
	if err != nil {
		t.Fatal(err)
	}
	st1 := s1.LastStats()
	if st1.Executed == 0 || st1.Replayed != 0 {
		t.Fatalf("cold stats = %+v", st1)
	}

	var live atomic.Int64
	counted := func(a design.Assignment, rep int) (map[string]float64, error) {
		live.Add(1)
		return mixedVarianceRunner(a, rep)
	}
	e2 := mixedVariance(t, 40)
	e2.Run = counted
	s2 := New(Options{Workers: 4, JournalDir: dir, Controller: newCtrl()})
	rs2, err := s2.Execute(context.Background(), e2)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s2.LastStats()
	if live.Load() != 0 || st2.Executed != 0 {
		t.Errorf("warm start executed %d live units (stats %+v), want pure replay", live.Load(), st2)
	}
	if st2.Replayed != st1.Executed {
		t.Errorf("Replayed = %d, want the cold run's %d", st2.Replayed, st1.Executed)
	}
	if rs1.CSV() != rs2.CSV() || rs1.Report() != rs2.Report() {
		t.Error("warm-started adaptive ResultSet differs from the cold one")
	}
	c1, c2 := s1.CellStats(), s2.CellStats()
	for i := range c1 {
		if c1[i].Spent() != c2[i].Spent() {
			t.Errorf("cell %d budget drifted on resume: %d -> %d", i, c1[i].Spent(), c2[i].Spent())
		}
		if c2[i].Replayed != c2[i].Spent() {
			t.Errorf("cell %d: %d of %d replicates replayed, want all", i, c2[i].Replayed, c2[i].Spent())
		}
	}
}

// TestAdaptivePrioritySchedulesFlaggedFirst: a gate-flagged cell's units
// must be handed to the pool before any unflagged cell's.
func TestAdaptivePrioritySchedulesFlaggedFirst(t *testing.T) {
	ctrl, err := adaptive.New(adaptive.Options{Rel: 0.05, Min: 2, Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	flagged := runstore.CellKey("mixed-variance", runstore.AssignmentHash(map[string]string{"noise": "hi"}))
	ctrl.Prioritize(flagged)

	var order []string
	run := func(a design.Assignment, rep int) (map[string]float64, error) {
		order = append(order, a["noise"]) // Workers: 1 — appends are serial
		return mixedVarianceRunner(a, rep)
	}
	e := mixedVariance(t, 4)
	e.Run = run
	s := New(Options{Workers: 1, Controller: ctrl})
	if _, err := s.Execute(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if len(order) < 4 {
		t.Fatalf("executed %d units, want at least the two min batches", len(order))
	}
	if order[0] != "hi" || order[1] != "hi" {
		t.Errorf("first scheduled units = %v, want the flagged hi cell first", order[:4])
	}
}

// TestAdaptiveRetriesAndErrors: the dynamic path inherits the fixed
// path's retry and abort behavior.
func TestAdaptiveRetriesAndErrors(t *testing.T) {
	newCtrl := func() *adaptive.Controller {
		ctrl, err := adaptive.New(adaptive.Options{Min: 2, Max: 4})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	var failedOnce atomic.Bool
	flaky := func(a design.Assignment, rep int) (map[string]float64, error) {
		if a["noise"] == "hi" && rep == 0 && !failedOnce.Swap(true) {
			return nil, os.ErrDeadlineExceeded
		}
		return mixedVarianceRunner(a, rep)
	}
	e := mixedVariance(t, 4)
	e.Run = flaky
	s := New(Options{Workers: 2, Retries: 1, Controller: newCtrl()})
	if _, err := s.Execute(context.Background(), e); err != nil {
		t.Fatalf("one retry should absorb the single failure: %v", err)
	}
	if st := s.LastStats(); st.Retried != 1 {
		t.Errorf("Retried = %d, want 1", st.Retried)
	}

	always := func(design.Assignment, int) (map[string]float64, error) {
		return nil, os.ErrDeadlineExceeded
	}
	e2 := mixedVariance(t, 4)
	e2.Run = always
	s2 := New(Options{Workers: 2, Retries: 1, Controller: newCtrl()})
	if _, err := s2.Execute(context.Background(), e2); err == nil {
		t.Error("permanent failure should abort the adaptive run")
	} else if !strings.Contains(err.Error(), "attempts") {
		t.Errorf("error should mention attempts: %v", err)
	}
}
