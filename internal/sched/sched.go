package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/runstore/shardstore"
)

// Options configure a Scheduler.
type Options struct {
	// Workers bounds the number of concurrently executing units.
	// Values < 1 default to GOMAXPROCS.
	Workers int
	// Retries is how many extra attempts a failed unit gets before its
	// error aborts the run.
	Retries int
	// Timeout is the per-attempt wall-clock budget; 0 means none.
	//
	// Abandonment contract: the harness RunFunc signature carries no
	// context, so a timed-out attempt's goroutine is abandoned, not
	// interrupted. The abandoned goroutine keeps running to completion
	// in the background and its result is discarded — it is never
	// journaled, never written into the ResultSet, and never counted in
	// Stats, so a late finisher cannot corrupt a run that already moved
	// on (or returned). The worker that launched it is released
	// immediately (the handoff channel is buffered), so abandoned
	// attempts cannot deadlock or shrink the pool. Runners should be
	// side-effect free on cancellation; a runner that blocks forever
	// leaks its goroutine until process exit.
	Timeout time.Duration
	// Controller, when set, switches the scheduler from the fixed
	// rows x Replicates budget to controller-driven adaptive
	// replication: work units are generated dynamically, one batch per
	// cell at a time, until the controller's stopping rule is satisfied.
	// See the Controller interface; internal/adaptive implements it.
	Controller Controller
	// Store, when set, persists every completed unit and warm-starts
	// from units already present. Any runstore.Store backend works: the
	// single-file JSONL journal, the sharded directory store
	// (internal/runstore/shardstore), or a future database backend. The
	// caller keeps ownership (and must Close it).
	Store runstore.Store
	// JournalDir, when Store is nil, makes the scheduler open (and
	// close) a per-experiment store under JournalDir for each Execute
	// call: a plain journal at <JournalDir>/<experiment>.jsonl, or — with
	// Shards > 0 — this process's shard of a sharded directory store.
	JournalDir string
	// OpenStore, when set alongside JournalDir, replaces the default
	// per-experiment journal with another Store backend (e.g.
	// archivestore.OpenDir for block-indexed archives). The scheduler's
	// execution semantics — warm-start replay, per-unit journaling,
	// deterministic ResultSet assembly — are identical across backends;
	// only the file behind them changes. Incompatible with sharded
	// execution, whose shard files are journals by construction.
	OpenStore func(dir, experiment string) (runstore.Store, error)
	// Shards, when > 0, partitions the design's rows across Shards
	// cooperating scheduler processes by assignment hash
	// (runstore.ShardIndex): this scheduler executes only the rows owned
	// by shard Shard and skips the rest, so N workers given the same
	// experiment and the same Shards cover the design disjointly and
	// exhaustively. Sharded execution requires a store (completed work
	// would otherwise be unreachable by the merge step) and a fixed
	// replication budget (no Controller). Rows owned by other shards
	// appear in the ResultSet with only the replicates the store already
	// holds — usually none during a worker run; run the merged journal
	// through an unsharded scheduler for the complete artifact.
	Shards int
	// Shard is this process's shard index in [0, Shards).
	Shard int
	// Metrics is the registry the scheduler's instruments register in;
	// nil means the process-wide obs.Default(). Tests pass a private
	// registry to assert exact counts in isolation.
	Metrics *obs.Registry
}

// Stats counts what one Execute call did.
type Stats struct {
	// Units is the number of completed units. With a fixed budget it is
	// rows x replicates; under an adaptive Controller the work list is
	// not enumerable up front, so Units is Executed + Replayed.
	Units    int
	Executed int // units run live
	Replayed int // units restored from the journal without execution
	Retried  int // failed attempts that were retried
	Skipped  int // units owned by other shards of a sharded run
	// FixedBudget is what the run would have cost without a controller:
	// rows x Design.Replicates. Equal to Units on fixed-budget runs; the
	// budget report compares Units against it on adaptive ones.
	FixedBudget int
}

// Scheduler executes experiments concurrently. It is safe for use from
// multiple goroutines; LastStats reports the most recent Execute.
type Scheduler struct {
	opts      Options
	reg       *obs.Registry
	met       *schedMetrics // nil disables instrumentation (benchmark baseline)
	mu        sync.Mutex
	last      Stats
	lastCells []harness.CellStats
}

// New returns a Scheduler with the given options.
func New(opts Options) *Scheduler {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	return &Scheduler{opts: opts, reg: reg, met: newSchedMetrics(reg)}
}

// MetricsSnapshot returns a point-in-time snapshot of the registry the
// scheduler's instruments live in (Options.Metrics or the process
// default).
func (s *Scheduler) MetricsSnapshot() obs.Snapshot { return s.reg.Snapshot() }

// LastStats returns the stats of the most recently completed Execute.
func (s *Scheduler) LastStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// CellStats implements harness.BudgetReporter: per-cell replicate spend
// of the most recent Execute. It is nil unless that run was driven by an
// adaptive Controller — a fixed-budget run spends uniformly, so there is
// no per-cell budget story to tell.
func (s *Scheduler) CellStats() []harness.CellStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastCells
}

// TakeCellStats returns CellStats and clears it, so a caller reporting
// after each of several driver invocations (the perfeval run loop)
// never re-attributes one experiment's budget to a driver that executed
// no harness experiment at all.
func (s *Scheduler) TakeCellStats() []harness.CellStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	cells := s.lastCells
	s.lastCells = nil
	return cells
}

// unit is one (design row, replicate) execution.
type unit struct {
	row, rep int
	a        design.Assignment
	hash     string
}

// Execute implements harness.Executor: it validates the experiment,
// replays journaled units, schedules the rest onto the worker pool, and
// assembles the ResultSet in design order — byte-identical to what the
// sequential executor produces for the same runner outputs, regardless
// of completion order.
//
// Cancellation: once ctx is done the scheduler stops feeding work,
// lets in-flight units finish (journaling each as it completes — a
// canceled run's journal is always valid and warm-startable), waits for
// every worker to exit, and returns the context error. Units already
// dispatched are never torn mid-append; units never dispatched are
// simply absent from the journal, exactly what a resume re-executes.
func (s *Scheduler) Execute(ctx context.Context, e *harness.Experiment) (*harness.ResultSet, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	sharded := s.opts.Shards > 0
	if sharded {
		switch {
		case s.opts.Shard < 0 || s.opts.Shard >= s.opts.Shards:
			return nil, fmt.Errorf("sched: shard %d out of range [0,%d)", s.opts.Shard, s.opts.Shards)
		case s.opts.Store == nil && s.opts.JournalDir == "":
			return nil, fmt.Errorf("sched: sharded execution requires a store (Options.Store or JournalDir); without one the merge step has nothing to collect")
		case s.opts.Controller != nil:
			return nil, fmt.Errorf("sched: sharded execution requires a fixed replication budget, not an adaptive Controller")
		case s.opts.OpenStore != nil:
			return nil, fmt.Errorf("sched: sharded execution uses journal shard files; it cannot combine with Options.OpenStore")
		}
	}
	store := s.opts.Store
	if store == nil && s.opts.JournalDir != "" {
		var err error
		switch {
		case sharded:
			store, err = shardstore.OpenShard(s.opts.JournalDir, e.Name, s.opts.Shard, s.opts.Shards)
		case s.opts.OpenStore != nil:
			store, err = s.opts.OpenStore(s.opts.JournalDir, e.Name)
		default:
			store, err = runstore.OpenDir(s.opts.JournalDir, e.Name)
		}
		if err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
		defer store.Close()
	}

	if s.opts.Controller != nil {
		return s.executeDynamic(ctx, e, store, s.opts.Controller)
	}

	rows := e.Design.NumRuns()
	reps := e.Design.Replicates
	results := make([][]map[string]float64, rows)
	assignments := make([]design.Assignment, rows)
	owned := make([]bool, rows)
	var pending []unit
	var stats Stats
	stats.FixedBudget = rows * reps
	for r := 0; r < rows; r++ {
		a, err := e.Design.Assignment(r)
		if err != nil {
			return nil, err
		}
		assignments[r] = a
		hash := runstore.AssignmentHash(a)
		owned[r] = !sharded || runstore.ShardIndex(hash, s.opts.Shards) == s.opts.Shard
		results[r] = make([]map[string]float64, reps)
		for rep := 0; rep < reps; rep++ {
			if store != nil {
				if rec, ok := store.Lookup(e.Name, hash, rep); ok {
					// Replay only if the journaled record satisfies the
					// experiment's current response contract; otherwise
					// fall through and re-execute (e.g. a new response
					// was added since the journal was written).
					if harness.CheckResponses(e, rec.Responses) == nil {
						results[r][rep] = rec.Responses
						stats.Replayed++
						continue
					}
				}
			}
			if !owned[r] {
				stats.Skipped++
				continue
			}
			pending = append(pending, unit{row: r, rep: rep, a: a, hash: hash})
		}
	}
	stats.Units = rows*reps - stats.Skipped
	if m := s.met; m != nil {
		m.replayed.Add(int64(stats.Replayed))
		m.skipped.Add(int64(stats.Skipped))
	}

	if err := s.runPool(ctx, e, store, pending, results, &stats); err != nil {
		return nil, err
	}

	rs := &harness.ResultSet{Experiment: e}
	for r := 0; r < rows; r++ {
		rowReps := results[r]
		if !owned[r] {
			// An unowned row carries only what the store already held:
			// its contiguous replicate prefix. Trim the unexecuted tail
			// so the ResultSet never holds nil replicates.
			n := 0
			for n < len(rowReps) && rowReps[n] != nil {
				n++
			}
			rowReps = rowReps[:n]
		}
		rs.Rows = append(rs.Rows, harness.ResultRow{Assignment: assignments[r], Reps: rowReps})
	}
	s.mu.Lock()
	s.last = stats
	s.lastCells = nil
	s.mu.Unlock()
	return rs, nil
}

// runPool drives the pending units through the worker pool. Each worker
// writes into a distinct (row, rep) slot of results, so no lock is
// needed on the result matrix; stats counters are mutex-guarded. A done
// context stops the feed; workers drain their in-flight unit (journaled
// as usual) and exit, and the context error is returned.
func (s *Scheduler) runPool(ctx context.Context, e *harness.Experiment, store runstore.Store, pending []unit, results [][]map[string]float64, stats *Stats) error {
	if len(pending) == 0 {
		return nil
	}
	workers := s.opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	jobs := make(chan unit)
	quit := make(chan struct{})
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			close(quit)
		})
	}
	var statsMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				select {
				case <-quit:
					return
				case <-ctx.Done():
					return
				default:
				}
				start := time.Now()
				resp, retried, err := s.runWithRetry(ctx, e, u)
				if m := s.met; m != nil {
					m.unitSeconds.Observe(time.Since(start).Seconds())
					if retried > 0 {
						m.retried.Add(int64(retried))
					}
				}
				statsMu.Lock()
				stats.Retried += retried
				statsMu.Unlock()
				if err != nil {
					if ctx.Err() != nil {
						return // cancellation, not a unit failure
					}
					fail(err)
					return
				}
				if store != nil {
					err := store.Append(runstore.Record{
						Experiment: e.Name,
						Row:        u.row,
						Replicate:  u.rep,
						Hash:       u.hash,
						Assignment: u.a,
						Responses:  resp,
					})
					if err != nil {
						fail(err)
						return
					}
				}
				results[u.row][u.rep] = resp
				if m := s.met; m != nil {
					m.executed.Inc()
				}
				statsMu.Lock()
				stats.Executed++
				statsMu.Unlock()
			}
		}()
	}
	if m := s.met; m != nil {
		m.queueDepth.Add(int64(len(pending)))
	}
	fed := 0
feed:
	for _, u := range pending {
		select {
		case jobs <- u:
			fed++
			if m := s.met; m != nil {
				m.queueDepth.Add(-1)
			}
		case <-quit:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	if m := s.met; m != nil {
		// An aborted feed leaves undispatched units; zero them out so the
		// gauge never reports a queue that no longer exists.
		m.queueDepth.Add(-int64(len(pending) - fed))
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sched: %s interrupted: %w (journal holds every completed unit; re-run to resume)", e.Name, err)
	}
	return nil
}

// runWithRetry executes one unit with the configured retry budget,
// returning the responses and how many failed attempts were retried. A
// done context stops the retry loop — a canceled run must not burn its
// retry budget re-attempting units nobody will wait for.
func (s *Scheduler) runWithRetry(ctx context.Context, e *harness.Experiment, u unit) (map[string]float64, int, error) {
	attempts := 1 + s.opts.Retries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	retried := 0
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if ctx.Err() != nil {
				break
			}
			retried++
		}
		resp, err := s.attempt(ctx, e, u)
		if err == nil {
			return resp, retried, nil
		}
		lastErr = err
	}
	if s.opts.Retries > 0 {
		lastErr = fmt.Errorf("sched: after %d attempts: %w", attempts, lastErr)
	}
	return nil, retried, lastErr
}

// attempt runs one unit, enforcing the per-attempt timeout if set.
// With a timeout armed, context cancellation abandons the attempt the
// same way a timeout does (see the Options.Timeout contract): the
// runner goroutine finishes in the background and its result is
// discarded. Without a timeout the attempt runs to completion — the
// harness RunFunc carries no context, so there is nothing to interrupt;
// cancellation then takes effect at the next unit boundary.
func (s *Scheduler) attempt(ctx context.Context, e *harness.Experiment, u unit) (map[string]float64, error) {
	if s.opts.Timeout <= 0 {
		return harness.RunUnit(e, u.a, u.row, u.rep)
	}
	type outcome struct {
		resp map[string]float64
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		resp, err := harness.RunUnit(e, u.a, u.row, u.rep)
		ch <- outcome{resp, err}
	}()
	timer := time.NewTimer(s.opts.Timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.resp, out.err
	case <-ctx.Done():
		return nil, fmt.Errorf("sched: %s run %d replicate %d abandoned: %w",
			e.Name, u.row+1, u.rep+1, ctx.Err())
	case <-timer.C:
		if m := s.met; m != nil {
			m.timedout.Inc()
		}
		return nil, fmt.Errorf("sched: %s run %d replicate %d timed out after %v",
			e.Name, u.row+1, u.rep+1, s.opts.Timeout)
	}
}
