// Package sched is the concurrent experiment executor: a worker pool
// that runs design rows x replicates with bounded parallelism, per-unit
// retry and timeout, deterministic result ordering, and warm-start from
// a runstore store — units already persisted are replayed from disk
// instead of re-executed.
//
// With Options.Controller set the fixed budget gives way to dynamic
// work generation: the controller (internal/adaptive) grows each cell
// batch by batch until its sequential-analysis stopping rule is met,
// so replication is spent where variance demands it.
//
// The scheduler implements harness.Executor, so it plugs into the
// package-level harness.Execute — scoped to one run via
// harness.WithExecutor (how the public repro package binds it), or
// process-wide via harness.SetDefaultExecutor. It is an
// opt-in: the sequential executor remains the default because concurrent
// execution on one machine perturbs time measurements — use the
// scheduler for simulation-backed or I/O-bound experiments, for
// re-running large designs after a crash, and for analysis passes where
// wall-clock throughput matters more than measurement isolation.
//
// Concurrency contract: a Scheduler is safe for use from multiple
// goroutines; each Execute call runs its own worker pool, and workers
// write disjoint result slots. A timed-out unit's goroutine is
// abandoned, never joined — see Options.Timeout for the full
// abandonment contract.
//
// Cancellation contract: Execute takes a context; once it is done the
// scheduler stops feeding work, drains in-flight units (each journaled
// as it completes), waits for every worker to exit, and returns the
// context error. The store is always left valid and warm-startable —
// an interrupted run resumes by re-running with the same store.
//
// Durability contract: the scheduler owns none itself; it delegates to
// whatever runstore.Store it runs against (Options.Store, or a
// per-experiment store opened from Options.JournalDir — the JSONL
// journal by default, a shard of a sharded store under sharded
// execution, or any backend via Options.OpenStore). Every completed
// unit is appended — and therefore durable, per the Store contract —
// before its result enters the ResultSet, so a crash never loses
// completed work, only work in flight.
//
// The Store seam is what makes the scheduler distribution-agnostic: the
// collector worker (internal/collector/client) hands Options.Store a
// remote-store adapter that spools locally and streams appends to a
// collector daemon, and the scheduler neither knows nor cares — the
// same warm-start Lookup replays units other machines already ran, and
// the same Shards/Shard partition bounds what this process executes.
package sched
