package sched

import "repro/internal/obs"

// schedMetrics holds the scheduler's instruments, resolved once at
// construction so the hot path never touches the registry. A nil
// *schedMetrics disables instrumentation entirely — that is how the
// overhead benchmark measures the uninstrumented baseline — so every
// call site guards with a nil check.
type schedMetrics struct {
	executed    *obs.Counter
	replayed    *obs.Counter
	retried     *obs.Counter
	timedout    *obs.Counter
	skipped     *obs.Counter
	adaptGrow   *obs.Counter
	adaptStop   *obs.Counter
	queueDepth  *obs.Gauge
	unitSeconds *obs.Histogram
}

// newSchedMetrics registers the scheduler series in r.
func newSchedMetrics(r *obs.Registry) *schedMetrics {
	return &schedMetrics{
		executed: r.Counter("sched_units_executed_total",
			"Work units run live by the scheduler."),
		replayed: r.Counter("sched_units_replayed_total",
			"Work units restored from the journal without execution (warm-start hits)."),
		retried: r.Counter("sched_units_retried_total",
			"Failed attempts that were retried."),
		timedout: r.Counter("sched_units_timedout_total",
			"Attempts abandoned by the per-attempt timeout."),
		skipped: r.Counter("sched_units_skipped_total",
			"Units owned by other shards of a sharded run."),
		adaptGrow: r.Counter("sched_adaptive_continue_total",
			"Controller decisions that grew a cell by another batch."),
		adaptStop: r.Counter("sched_adaptive_stop_total",
			"Controller decisions that stopped a cell."),
		queueDepth: r.Gauge("sched_queue_depth",
			"Work units queued but not yet dispatched to a worker."),
		unitSeconds: r.Histogram("sched_unit_seconds",
			"Per-unit wall-clock latency including retries.", nil),
	}
}
