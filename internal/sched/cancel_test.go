package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/design"
	"repro/internal/runstore"
)

// TestCancellationDrainsAndLeavesWarmStartableJournal is the regression
// test for the context-cancellation contract: canceling mid-run (between
// unit completions) must drain the worker pool without leaking a single
// goroutine, leave the journal valid — no torn tail, every completed
// unit present, nothing else — and a warm-started re-run must replay
// exactly the journaled units and produce the same artifact a cold run
// produces.
func TestCancellationDrainsAndLeavesWarmStartableJournal(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	const cells, reps = 16, 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int64
	counting := func(a design.Assignment, rep int) (map[string]float64, error) {
		if completed.Add(1) == 6 {
			cancel() // cancel between units, mid-run
		}
		return wideRunner(a, rep)
	}

	s := New(Options{Workers: 2, JournalDir: dir})
	_, err := s.Execute(ctx, newWideExperiment(t, cells, reps, counting))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitGoroutines(t, base)

	// The journal is valid: opens cleanly, no torn tail, holds every
	// unit that completed before the drain finished and no more. With 2
	// workers, at most the 2 in-flight units complete after the 6th —
	// far fewer than the full design.
	j, err := runstore.OpenDir(dir, "sched wide")
	if err != nil {
		t.Fatalf("journal invalid after cancellation: %v", err)
	}
	if j.Torn() {
		t.Error("canceled run left a torn journal tail")
	}
	journaled := j.Len()
	j.Close()
	if journaled == 0 || journaled >= cells*reps {
		t.Fatalf("journal holds %d units, want some but not all %d", journaled, cells*reps)
	}

	// Warm start: the resumed run replays exactly the journaled units,
	// executes the rest, and matches a cold run byte for byte.
	s2 := New(Options{Workers: 2, JournalDir: dir})
	rs, err := s2.Execute(context.Background(), newWideExperiment(t, cells, reps, nil))
	if err != nil {
		t.Fatal(err)
	}
	st := s2.LastStats()
	if st.Replayed != journaled {
		t.Errorf("resume replayed %d units, journal held %d", st.Replayed, journaled)
	}
	if st.Executed != cells*reps-journaled {
		t.Errorf("resume executed %d units, want %d", st.Executed, cells*reps-journaled)
	}
	cold, err := New(Options{Workers: 1}).Execute(context.Background(), newWideExperiment(t, cells, reps, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rs.CSV() != cold.CSV() {
		t.Errorf("resumed ResultSet differs from cold run:\n%s\nvs\n%s", rs.CSV(), cold.CSV())
	}
}

// TestCancellationBeforeStartRunsNothing covers the already-canceled
// context: Execute must not run a single unit, and with a store
// configured must leave it empty rather than half-written.
func TestCancellationBeforeStartRunsNothing(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	run := func(a design.Assignment, rep int) (map[string]float64, error) {
		ran.Add(1)
		return wideRunner(a, rep)
	}
	s := New(Options{Workers: 2, JournalDir: dir})
	if _, err := s.Execute(ctx, newWideExperiment(t, 4, 2, run)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d units ran under an already-canceled context", n)
	}
	j, err := runstore.OpenDir(dir, "sched wide")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 0 {
		t.Errorf("journal holds %d units from a run that never started", j.Len())
	}
}

// TestAdaptiveCancellationDrainsAndResumes exercises the dynamic
// (controller-driven) pool: cancellation at a batch boundary must stop
// work generation, drain in-flight units into the journal, leak no
// goroutine, and leave a warm-startable journal an adaptive resume
// extends rather than re-executes.
func TestAdaptiveCancellationDrainsAndResumes(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int64
	counting := func(a design.Assignment, rep int) (map[string]float64, error) {
		if completed.Add(1) == 5 {
			cancel()
		}
		return mixedVarianceRunner(a, rep)
	}
	ctrl, err := adaptive.New(adaptive.Options{Min: 3, Max: 12})
	if err != nil {
		t.Fatal(err)
	}
	e := mixedVariance(t, 12)
	e.Run = counting
	s := New(Options{Workers: 2, Controller: ctrl, JournalDir: dir})
	if _, err := s.Execute(ctx, e); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitGoroutines(t, base)

	j, err := runstore.OpenDir(dir, "mixed-variance")
	if err != nil {
		t.Fatalf("journal invalid after adaptive cancellation: %v", err)
	}
	if j.Torn() {
		t.Error("canceled adaptive run left a torn journal tail")
	}
	journaled := j.Len()
	j.Close()
	if journaled == 0 {
		t.Fatal("no units journaled before cancellation")
	}

	// Adaptive resume: replays the journaled prefix against a fresh
	// controller and completes the run cleanly.
	ctrl2, err := adaptive.New(adaptive.Options{Min: 3, Max: 12})
	if err != nil {
		t.Fatal(err)
	}
	e2 := mixedVariance(t, 12)
	s2 := New(Options{Workers: 2, Controller: ctrl2, JournalDir: dir})
	if _, err := s2.Execute(context.Background(), e2); err != nil {
		t.Fatal(err)
	}
	if st := s2.LastStats(); st.Replayed == 0 {
		t.Errorf("adaptive resume replayed nothing, stats %+v", st)
	}
}
