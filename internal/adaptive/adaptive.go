package adaptive

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/runstore"
	"repro/internal/stats"
)

// Defaults for the zero values of Options, exported so front-ends (the
// perfeval banner) report the same numbers the controller applies.
const (
	DefaultRel        = 0.05
	DefaultConfidence = 0.95
	DefaultMin        = 3
	DefaultMax        = 50
)

// Options tune a Controller.
type Options struct {
	// Rel is the stopping target: replication stops once the cell's
	// confidence interval has relative half-width <= Rel for every
	// declared response (default DefaultRel, the mean known to ±5%).
	Rel float64
	// TightRel is the target applied to flagged cells (default Rel/2).
	TightRel float64
	// Confidence of the running intervals (default 0.95).
	Confidence float64
	// Min is the number of replicates every cell gets before the
	// stopping rule may fire (default 3). Precision claims need at
	// least 2; journal-replayed replicates count.
	Min int
	// Max caps the replicates any one cell may spend (default 50). A
	// cell that exhausts Max stops regardless of achieved precision.
	Max int
	// Baseline, when set, is compared against each cell's running
	// interval: a cell whose interval is disjoint from and above its
	// baseline interval (the gate's "regressed" verdict) is flagged —
	// tighter target, scheduled first from then on. Summaries for
	// several experiments may be supplied via AddBaseline.
	Baseline *runstore.Summary
	// BaselineOpt builds the baseline intervals (zero value = the
	// regression gate's defaults: 95% confidence, 5% tolerance band for
	// single-replicate cells).
	BaselineOpt runstore.GateOptions
}

func (o *Options) fill() error {
	if o.Rel == 0 {
		o.Rel = DefaultRel
	}
	if o.TightRel == 0 {
		o.TightRel = o.Rel / 2
	}
	if o.Confidence == 0 {
		o.Confidence = DefaultConfidence
	}
	if o.Min == 0 {
		o.Min = DefaultMin
	}
	if o.Max == 0 {
		o.Max = DefaultMax
	}
	switch {
	case o.Rel <= 0:
		return fmt.Errorf("adaptive: Rel target must be > 0, got %g", o.Rel)
	case o.TightRel <= 0 || o.TightRel > o.Rel:
		return fmt.Errorf("adaptive: TightRel must be in (0, Rel], got %g", o.TightRel)
	case o.Confidence <= 0 || o.Confidence >= 1:
		return fmt.Errorf("adaptive: confidence must be in (0,1), got %g", o.Confidence)
	case o.Min < 1:
		return fmt.Errorf("adaptive: Min = %d, need >= 1", o.Min)
	case o.Max < o.Min:
		return fmt.Errorf("adaptive: Max = %d < Min = %d", o.Max, o.Min)
	}
	return nil
}

// cell is the controller's per-cell state. Observations are stored
// indexed by replicate, so the values underlying every decision are in
// replicate order regardless of the completion order within a batch —
// floating-point summation order, and with it every decision, stays
// deterministic.
type cell struct {
	obs      map[string][]float64 // response -> values indexed by replicate
	observed int                  // distinct replicates ingested
	flagged  bool                 // gate-flagged: tight target, scheduled first
	stopped  string               // human-readable stop reason, set on the stopping decision
}

// Controller implements sched.Controller with the CI-targeted stopping
// rule. Safe for concurrent use.
type Controller struct {
	opts Options
	mu   sync.Mutex
	base map[string]map[string]stats.Interval // cell key -> response -> baseline interval
	c    map[string]*cell
}

// New returns a Controller. Options left zero take their documented
// defaults; contradictory options are an error.
func New(opts Options) (*Controller, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	ctrl := &Controller{
		opts: opts,
		base: map[string]map[string]stats.Interval{},
		c:    map[string]*cell{},
	}
	if opts.Baseline != nil {
		if err := ctrl.AddBaseline(opts.Baseline); err != nil {
			return nil, err
		}
	}
	return ctrl, nil
}

// AddBaseline registers one experiment's baseline summary; its cells
// become eligible for mid-run drift flagging. Several experiments may
// be registered on one controller.
func (ctrl *Controller) AddBaseline(s *runstore.Summary) error {
	ivs, err := s.Intervals(ctrl.opts.BaselineOpt)
	if err != nil {
		return err
	}
	ctrl.mu.Lock()
	defer ctrl.mu.Unlock()
	for hash, byResp := range ivs {
		ctrl.base[runstore.CellKey(s.Experiment, hash)] = byResp
	}
	return nil
}

// Prioritize flags cells by key (runstore.CellKey form): tighter target,
// scheduled ahead of unflagged cells.
func (ctrl *Controller) Prioritize(keys ...string) {
	ctrl.mu.Lock()
	defer ctrl.mu.Unlock()
	for _, k := range keys {
		ctrl.get(k).flagged = true
	}
}

// PrioritizeGateFindings flags every cell a gate report found regressed
// and returns how many cells that flagged.
func (ctrl *Controller) PrioritizeGateFindings(report *runstore.GateReport) int {
	n := 0
	for _, f := range report.Regressions() {
		ctrl.Prioritize(runstore.CellKey(report.Experiment, runstore.AssignmentHash(f.Assignment)))
		n++
	}
	return n
}

func (ctrl *Controller) get(key string) *cell {
	cl := ctrl.c[key]
	if cl == nil {
		cl = &cell{obs: map[string][]float64{}}
		ctrl.c[key] = cl
	}
	return cl
}

// Observe implements sched.Controller.
func (ctrl *Controller) Observe(key string, replicate int, responses map[string]float64) {
	ctrl.mu.Lock()
	defer ctrl.mu.Unlock()
	cl := ctrl.get(key)
	for name, v := range responses {
		s := cl.obs[name]
		for len(s) <= replicate {
			s = append(s, math.NaN())
		}
		s[replicate] = v
		cl.obs[name] = s
	}
	cl.observed++
}

// Target implements sched.Controller: the sequential-analysis stopping
// rule. Called at batch boundaries, with replicates 0..observed-1 all
// ingested.
func (ctrl *Controller) Target(key string, observed int) int {
	ctrl.mu.Lock()
	defer ctrl.mu.Unlock()
	cl := ctrl.get(key)
	o := ctrl.opts

	// Baseline drift check on the complete prefix: once a cell's running
	// interval is disjoint from and above its baseline, it is flagged for
	// the rest of the run (sticky — evidence of a regression does not
	// expire because later replicates narrow the interval).
	if !cl.flagged && observed >= 2 {
		if byResp, ok := ctrl.base[key]; ok {
			for name, bi := range byResp {
				iv, err := stats.MeanCI(prefix(cl.obs[name], observed), o.Confidence)
				if err == nil && !bi.Overlaps(iv) && iv.Mean > bi.Mean {
					cl.flagged = true
					break
				}
			}
		}
	}
	rel := o.Rel
	if cl.flagged {
		rel = o.TightRel
	}

	if observed < o.Min {
		return o.Min
	}
	worst := cl.worstRel(observed, o.Confidence)
	switch {
	case observed >= 2 && worst <= rel:
		cl.stopped = fmt.Sprintf("rel ±%.1f%% ≤ %.1f%% after %d reps", worst*100, rel*100, observed)
		return observed
	case observed >= o.Max:
		cl.stopped = fmt.Sprintf("max budget %d reps, rel ±%.1f%% > %.1f%%", o.Max, worst*100, rel*100)
		return observed
	default:
		return observed + 1
	}
}

// worstRel returns the worst (largest) relative CI half-width across the
// cell's responses over replicates 0..n-1, or +Inf while n < 2.
func (cl *cell) worstRel(n int, confidence float64) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, values := range cl.obs {
		iv, err := stats.MeanCI(prefix(values, n), confidence)
		if err != nil {
			return math.Inf(1)
		}
		if r := iv.RelHalfWidth(); r > worst {
			worst = r
		}
	}
	return worst
}

// prefix returns the first n values (fewer only if the slice is short —
// a response the runner stopped emitting would fail validation earlier).
func prefix(values []float64, n int) []float64 {
	if n > len(values) {
		n = len(values)
	}
	return values[:n]
}

// Priority implements sched.Controller.
func (ctrl *Controller) Priority(key string) bool {
	ctrl.mu.Lock()
	defer ctrl.mu.Unlock()
	return ctrl.get(key).flagged
}

// Explain implements sched.Controller.
func (ctrl *Controller) Explain(key string) string {
	ctrl.mu.Lock()
	defer ctrl.mu.Unlock()
	cl := ctrl.get(key)
	msg := cl.stopped
	if msg == "" {
		msg = fmt.Sprintf("undecided after %d reps", cl.observed)
	}
	if cl.flagged {
		msg = "gate-flagged: " + msg
	}
	return msg
}
