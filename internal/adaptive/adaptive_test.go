package adaptive

import (
	"math"
	"strings"
	"testing"

	"repro/internal/runstore"
)

func observeReps(c *Controller, key string, values ...float64) {
	for rep, v := range values {
		c.Observe(key, rep, map[string]float64{"ms": v})
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err != nil {
		t.Errorf("zero options should take defaults: %v", err)
	}
	for _, bad := range []Options{
		{Rel: -1},
		{Rel: 0.05, TightRel: 0.1}, // tighter must not be looser
		{Confidence: 1.5},
		{Min: -2},
		{Min: 10, Max: 3},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%+v) should error", bad)
		}
	}
}

// TestStoppingRule walks one cell through the sequential analysis: the
// min phase is unconditional, then a tight sample stops at min while a
// noisy one keeps going until the budget is exhausted.
func TestStoppingRule(t *testing.T) {
	c, err := New(Options{Rel: 0.05, Min: 3, Max: 6})
	if err != nil {
		t.Fatal(err)
	}

	// Cold cell: first batch is the minimum.
	if got := c.Target("e/tight", 0); got != 3 {
		t.Errorf("initial target = %d, want Min=3", got)
	}
	// Tight sample: ±0.1 around 100 is far inside the 5% target.
	observeReps(c, "e/tight", 100, 100.1, 99.9)
	if got := c.Target("e/tight", 3); got != 3 {
		t.Errorf("tight cell target = %d, want stop at 3", got)
	}
	if msg := c.Explain("e/tight"); !strings.Contains(msg, "≤") || !strings.Contains(msg, "3 reps") {
		t.Errorf("Explain = %q, want a precision-reached account", msg)
	}

	// Noisy sample: alternating 50/150 never reaches ±5%; one more at a
	// time until Max, then a forced stop.
	noisy := []float64{50, 150, 50, 150, 50, 150}
	for n := 0; n < len(noisy); n++ {
		c.Observe("e/noisy", n, map[string]float64{"ms": noisy[n]})
		want := n + 2 // one more
		if n+1 < 3 {
			want = 3 // min phase
		}
		if n+1 >= 6 {
			want = n + 1 // budget exhausted
		}
		if got := c.Target("e/noisy", n+1); got != want {
			t.Errorf("noisy cell after %d reps: target = %d, want %d", n+1, got, want)
		}
	}
	if msg := c.Explain("e/noisy"); !strings.Contains(msg, "max budget") {
		t.Errorf("Explain = %q, want a max-budget account", msg)
	}
}

// TestMinEqualsMax pins the fixed-budget degenerate case the
// equivalence test relies on: min=max=R always targets exactly R.
func TestMinEqualsMax(t *testing.T) {
	c, err := New(Options{Min: 4, Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Target("e/c", 0); got != 4 {
		t.Errorf("initial target = %d, want 4", got)
	}
	observeReps(c, "e/c", 10, 999, 10, 999) // precision irrelevant
	if got := c.Target("e/c", 4); got != 4 {
		t.Errorf("target after 4 = %d, want 4 (stop)", got)
	}
}

// TestWorstResponseGoverns: with several responses, the noisiest one
// drives the stopping rule.
func TestWorstResponseGoverns(t *testing.T) {
	c, err := New(Options{Rel: 0.05, Min: 2, Max: 10})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		c.Observe("e/c", rep, map[string]float64{
			"stable": 100 + 0.01*float64(rep),
			"noisy":  100 + 50*float64(rep),
		})
	}
	if got := c.Target("e/c", 2); got != 3 {
		t.Errorf("target = %d, want 3 (noisy response not yet precise)", got)
	}
}

// TestZeroMeanConservative: a zero-mean response with spread can never
// claim relative precision; the cell must run to Max, not stop early.
func TestZeroMeanConservative(t *testing.T) {
	c, err := New(Options{Rel: 0.05, Min: 2, Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{-1, 1, -1, 1}
	for rep, v := range vals {
		c.Observe("e/z", rep, map[string]float64{"delta": v})
	}
	if got := c.Target("e/z", 4); got != 4 {
		t.Errorf("target = %d, want forced stop at Max=4", got)
	}
	if msg := c.Explain("e/z"); !strings.Contains(msg, "max budget") {
		t.Errorf("Explain = %q, want max-budget stop", msg)
	}
	if math.IsNaN(math.Inf(1)) {
		t.Fatal("unreachable")
	}
}

// TestPrioritizeAndBaselineDrift: explicit flags and mid-run baseline
// drift both tighten the target and raise scheduling priority.
func TestPrioritizeAndBaselineDrift(t *testing.T) {
	base := &runstore.Summary{
		Experiment: "e",
		Rows: []runstore.SummaryRow{{
			Hash:       runstore.AssignmentHash(map[string]string{"f": "x"}),
			Assignment: map[string]string{"f": "x"},
			Response:   "ms",
			Values:     []float64{10, 10.1, 9.9},
		}},
	}
	c, err := New(Options{Rel: 0.10, Min: 3, Max: 20, Baseline: base})
	if err != nil {
		t.Fatal(err)
	}
	key := runstore.CellKey("e", runstore.AssignmentHash(map[string]string{"f": "x"}))

	// The running cell is 50% slower than baseline with a spread giving
	// ~±7% precision: intervals are disjoint, the cell must get flagged
	// and held to the tight target (5%) — so it keeps going where an
	// unflagged cell would already have stopped.
	observeReps(c, key, 15, 15.45, 15.9)
	if got := c.Target(key, 3); got != 4 {
		t.Errorf("drifted cell target = %d, want 4 (tight target not met)", got)
	}
	if !c.Priority(key) || !c.Priority(key) {
		t.Error("drifted cell should be flagged and prioritized")
	}
	if msg := c.Explain(key); !strings.Contains(msg, "gate-flagged") {
		t.Errorf("Explain = %q, want gate-flagged marker", msg)
	}

	// An unflagged control cell with the same spread stops immediately.
	c2, err := New(Options{Rel: 0.10, Min: 3, Max: 20})
	if err != nil {
		t.Fatal(err)
	}
	observeReps(c2, "e/ctl", 15, 15.45, 15.9)
	if got := c2.Target("e/ctl", 3); got != 3 {
		t.Errorf("control cell target = %d, want stop at 3", got)
	}

	// A cell without a baseline entry is never drift-flagged.
	observeReps(c, "e/other", 5, 5.1, 5.2)
	c.Target("e/other", 3)
	if c.Priority("e/other") {
		t.Error("cell without a baseline entry must not be flagged")
	}

	// Explicit prioritization, as PrioritizeGateFindings would do it.
	c.Prioritize("e/manual")
	if !c.Priority("e/manual") {
		t.Error("Prioritize should raise Priority")
	}
}

// TestPrioritizeGateFindings flags exactly the regressed cells of a
// gate report.
func TestPrioritizeGateFindings(t *testing.T) {
	mk := func(level string, vals ...float64) runstore.SummaryRow {
		a := map[string]string{"f": level}
		return runstore.SummaryRow{Hash: runstore.AssignmentHash(a), Assignment: a, Response: "ms", Values: vals}
	}
	base := &runstore.Summary{Experiment: "e", Rows: []runstore.SummaryRow{
		mk("lo", 10, 10.1, 9.9), mk("hi", 20, 20.1, 19.9),
	}}
	cur := &runstore.Summary{Experiment: "e", Rows: []runstore.SummaryRow{
		mk("lo", 10, 10.1, 9.9), mk("hi", 30, 30.1, 29.9), // hi regressed
	}}
	report, err := runstore.Gate(base, cur, runstore.GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.PrioritizeGateFindings(report); n != 1 {
		t.Errorf("flagged %d cells, want 1", n)
	}
	hi := runstore.CellKey("e", runstore.AssignmentHash(map[string]string{"f": "hi"}))
	lo := runstore.CellKey("e", runstore.AssignmentHash(map[string]string{"f": "lo"}))
	if !c.Priority(hi) || c.Priority(lo) {
		t.Errorf("priority: hi=%v lo=%v, want exactly the regressed cell", c.Priority(hi), c.Priority(lo))
	}
}
