// Package adaptive is the sequential-analysis replication controller:
// it decides, cell by cell, when a measurement is precise enough to stop
// replicating. The paper's discipline is that a mean is only meaningful
// with a confidence interval tight enough to support the claim made of
// it — this package turns that discipline into a scheduling policy. A
// fixed rows x replicates budget over-measures stable cells and
// under-measures noisy ones; the controller instead runs a minimum
// number of replicates, then keeps replicating a cell only while the
// relative half-width of its running confidence interval exceeds a
// target, up to a hard maximum.
//
// Cells the regression gate flagged — or whose running interval drifts
// off a stored baseline mid-run — are held to a tighter target and
// scheduled ahead of the rest: spend the hardware where the doubt is.
//
// Controller implements sched.Controller; wire it in via
// sched.Options.Controller.
//
// Concurrency contract: a Controller's methods are safe for concurrent
// use (one mutex guards per-cell state); the scheduler's workers report
// observations and request decisions from multiple goroutines.
// Decisions are taken only at batch boundaries on values stored in
// replicate order, so the per-cell budget is deterministic regardless of
// worker count or completion order.
//
// Durability contract: none — controller state is in-memory and
// per-run. Replicates already persisted in the run store re-enter a
// resumed controller as replayed observations and count against the
// cell's budget, so durability stays where it belongs, in
// runstore.Store.
package adaptive
