package sysinfo

import (
	"fmt"
	"strconv"
	"strings"
)

// CPUInfo is the parsed form of a /proc/cpuinfo processor block — the raw
// material the paper's slide 152 shows and from which a right-sized spec is
// assembled.
type CPUInfo struct {
	Vendor    string
	ModelName string
	MHz       float64
	CacheKB   int64
	Flags     []string
}

// ParseCPUInfo parses the first processor block of /proc/cpuinfo-format
// text. It tolerates unknown fields and returns an error when no
// recognizable fields are present.
func ParseCPUInfo(text string) (*CPUInfo, error) {
	info := &CPUInfo{}
	found := false
	for _, line := range strings.Split(text, "\n") {
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key := strings.TrimSpace(line[:colon])
		val := strings.TrimSpace(line[colon+1:])
		switch key {
		case "vendor_id":
			info.Vendor, found = val, true
		case "model name":
			info.ModelName, found = val, true
		case "cpu MHz":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				info.MHz, found = f, true
			}
		case "cache size":
			fields := strings.Fields(val)
			if len(fields) >= 1 {
				if n, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					info.CacheKB, found = n, true
				}
			}
		case "flags":
			info.Flags, found = strings.Fields(val), true
		case "processor":
			if info.Vendor != "" || info.ModelName != "" {
				// Second processor block: stop after the first.
				return info, nil
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("sysinfo: no recognizable cpuinfo fields in %d bytes of input", len(text))
	}
	return info, nil
}

// ToHWSpec lifts the parsed cpuinfo into a partial HWSpec (CPU fields
// only); the caller fills in memory, disk, and network.
//
// Note the clock-speed trap the paper's own sample shows: a laptop with
// frequency scaling reports "cpu MHz : 600.000" for a 1.5 GHz processor.
// When the model name carries a rated frequency ("... @ 1.50GHz" or
// "... 1.50GHz"), that is used instead of the momentary MHz reading.
func (c *CPUInfo) ToHWSpec() HWSpec {
	spec := HWSpec{
		CPUVendor: c.Vendor,
		CPUModel:  c.ModelName,
		ClockHz:   c.MHz * 1e6,
	}
	if rated := ratedHzFromModel(c.ModelName); rated > 0 {
		spec.ClockHz = rated
	}
	if c.CacheKB > 0 {
		spec.Caches = []CacheSpec{{Level: "L2", SizeBytes: c.CacheKB << 10}}
	}
	return spec
}

// ratedHzFromModel extracts a "1.50GHz" style rated frequency from a model
// name, returning 0 when absent.
func ratedHzFromModel(model string) float64 {
	lower := strings.ToLower(model)
	for _, unit := range []struct {
		suffix string
		mult   float64
	}{{"ghz", 1e9}, {"mhz", 1e6}} {
		idx := strings.Index(lower, unit.suffix)
		if idx <= 0 {
			continue
		}
		// Walk back over the number.
		end := idx
		start := end
		for start > 0 {
			ch := lower[start-1]
			if (ch >= '0' && ch <= '9') || ch == '.' {
				start--
				continue
			}
			break
		}
		if start == end {
			continue
		}
		if f, err := strconv.ParseFloat(lower[start:end], 64); err == nil {
			return f * unit.mult
		}
	}
	return 0
}
