package sysinfo

import (
	"runtime"
	"testing"
)

func TestCapture(t *testing.T) {
	hw, sw, err := Capture()
	if err != nil {
		t.Fatal(err)
	}
	if hw.CPUModel == "" {
		t.Error("capture should always produce some CPU description")
	}
	if sw.OS != runtime.GOOS {
		t.Errorf("OS = %q", sw.OS)
	}
	if sw.Compiler == "" || sw.Flags == "" {
		t.Error("software spec incomplete")
	}
	// The captured spec is a starting point: MissingFields must work on
	// it without panicking and usually reports gaps (memory/disk).
	_ = hw.MissingFields()
	if len(sw.MissingFields()) != 0 {
		t.Errorf("captured software spec missing %v", sw.MissingFields())
	}
}
