package sysinfo

import (
	"fmt"
	"os"
	"runtime"
)

// Capture assembles a best-effort hardware/software spec of the machine the
// process runs on: CPU details from /proc/cpuinfo where available (Linux),
// falling back to runtime information elsewhere. The result is a starting
// point — Validate/MissingFields tell you what still needs filling in by
// hand (memory, disks, network), because an honest partial spec beats a
// fabricated complete one.
func Capture() (HWSpec, SWSpec, error) {
	var hw HWSpec
	if text, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		if info, perr := ParseCPUInfo(string(text)); perr == nil {
			hw = info.ToHWSpec()
		}
	}
	if hw.CPUModel == "" {
		hw.CPUModel = fmt.Sprintf("%s/%s, %d logical CPUs", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
	}
	sw := SWSpec{
		OS:       runtime.GOOS,
		Compiler: runtime.Version(),
		Flags:    "go build defaults",
		Products: []ProductVersion{{Name: "repro", Version: "1.0", Source: "this repository"}},
	}
	return hw, sw, nil
}
