// Package sysinfo implements the paper's guidance on specifying hardware
// and software environments (slides 149-156): "We use a machine with
// 3.4 GHz" is under-specified; a 151-line lspci dump is over-specified; the
// right level names CPU vendor/model/generation/clock/caches, memory size,
// disk size/speed, and network — plus exact software versions.
package sysinfo

import (
	"fmt"
	"strconv"
	"strings"
)

// CacheSpec is one cache level.
type CacheSpec struct {
	Level     string // "L1", "L2", ...
	SizeBytes int64
}

// DiskSpec is one disk or array.
type DiskSpec struct {
	Description string // e.g. "Laptop ATA disk @ 5400RPM"
	SizeBytes   int64
}

// HWSpec is a hardware environment description.
type HWSpec struct {
	CPUVendor string
	CPUModel  string // model + generation, e.g. "Pentium M (Dothan)"
	ClockHz   float64
	Caches    []CacheSpec
	RAMBytes  int64
	Disks     []DiskSpec
	Network   string // type, speed & topology, e.g. "1Gb shared Ethernet"
}

// ProductVersion names one software product with its exact version and
// (optionally) where it was obtained.
type ProductVersion struct {
	Name    string
	Version string
	Source  string
}

// SWSpec is a software environment description.
type SWSpec struct {
	OS       string
	Kernel   string
	Compiler string
	Flags    string // the exact optimization flags: the DBG/OPT anecdote
	Products []ProductVersion
}

// DetailLevel classifies how much detail a spec report carries.
type DetailLevel int

const (
	// Under is the "3.4 GHz" one-liner: not reproducible.
	Under DetailLevel = iota
	// Right is the paper's recommended level.
	Right
	// Over is the full lspci dump: drowns the signal.
	Over
)

func (d DetailLevel) String() string {
	switch d {
	case Under:
		return "under-specified"
	case Right:
		return "right-sized"
	case Over:
		return "over-specified"
	default:
		return fmt.Sprintf("DetailLevel(%d)", int(d))
	}
}

// MissingFields lists what a right-sized report still needs. An empty
// result means the spec is complete.
func (h *HWSpec) MissingFields() []string {
	var out []string
	if h.CPUVendor == "" {
		out = append(out, "CPU vendor")
	}
	if h.CPUModel == "" {
		out = append(out, "CPU model/generation")
	}
	if h.ClockHz <= 0 {
		out = append(out, "CPU clock speed")
	}
	if len(h.Caches) == 0 {
		out = append(out, "cache sizes")
	}
	if h.RAMBytes <= 0 {
		out = append(out, "main memory size")
	}
	if len(h.Disks) == 0 {
		out = append(out, "disk size & speed")
	}
	return out
}

// MissingFields lists what a software spec still needs.
func (s *SWSpec) MissingFields() []string {
	var out []string
	if s.OS == "" {
		out = append(out, "operating system")
	}
	if s.Compiler == "" {
		out = append(out, "compiler")
	}
	if s.Flags == "" {
		out = append(out, "compiler/optimization flags")
	}
	for _, p := range s.Products {
		if p.Version == "" {
			out = append(out, fmt.Sprintf("exact version of %s", p.Name))
		}
	}
	return out
}

// Report renders the spec at the requested detail level. Right is the
// paper's slide-155 format.
func (h *HWSpec) Report(level DetailLevel) string {
	switch level {
	case Under:
		return fmt.Sprintf("We use a machine with %s.", fmtHz(h.ClockHz))
	case Over:
		var b strings.Builder
		b.WriteString(h.Report(Right))
		b.WriteString("\n-- full device listing --\n")
		for i := 0; i < 150; i++ {
			fmt.Fprintf(&b, "%02x:%02x.0 Device: vendor-specific function %d (rev %02d)\n", i/8, i%8, i, i%16)
		}
		return b.String()
	default:
		var b strings.Builder
		fmt.Fprintf(&b, "CPU: %s %s, %s", h.CPUVendor, h.CPUModel, fmtHz(h.ClockHz))
		for _, c := range h.Caches {
			fmt.Fprintf(&b, ", %s %s cache", fmtBytes(c.SizeBytes), c.Level)
		}
		fmt.Fprintf(&b, "\nMain memory: %s RAM\n", fmtBytes(h.RAMBytes))
		for _, d := range h.Disks {
			fmt.Fprintf(&b, "Disk: %s %s\n", fmtBytes(d.SizeBytes), d.Description)
		}
		if h.Network != "" {
			fmt.Fprintf(&b, "Network: %s\n", h.Network)
		}
		return b.String()
	}
}

// Report renders the software environment: "product names, exact version
// numbers, and/or sources where obtained from".
func (s *SWSpec) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OS: %s", s.OS)
	if s.Kernel != "" {
		fmt.Fprintf(&b, " (kernel %s)", s.Kernel)
	}
	b.WriteByte('\n')
	if s.Compiler != "" {
		fmt.Fprintf(&b, "Compiler: %s", s.Compiler)
		if s.Flags != "" {
			fmt.Fprintf(&b, " [%s]", s.Flags)
		}
		b.WriteByte('\n')
	}
	for _, p := range s.Products {
		fmt.Fprintf(&b, "%s %s", p.Name, p.Version)
		if p.Source != "" {
			fmt.Fprintf(&b, " (from %s)", p.Source)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Classify estimates the detail level of a free-form hardware description:
// a clock speed alone is under-specified; dozens of device lines are
// over-specified; CPU+memory+disk data is right-sized.
func Classify(report string) DetailLevel {
	lines := strings.Count(strings.TrimSpace(report), "\n") + 1
	if lines > 40 {
		return Over
	}
	lower := strings.ToLower(report)
	score := 0
	for _, signal := range []string{"cache", "ram", "memory", "disk", "rpm", "cpu"} {
		if strings.Contains(lower, signal) {
			score++
		}
	}
	if score >= 3 {
		return Right
	}
	return Under
}

func fmtHz(hz float64) string {
	switch {
	case hz >= 1e9:
		return trimZero(hz/1e9) + " GHz"
	case hz >= 1e6:
		return trimZero(hz/1e6) + " MHz"
	default:
		return trimZero(hz) + " Hz"
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return trimZero(float64(b)/(1<<30)) + "GB"
	case b >= 1<<20:
		return trimZero(float64(b)/(1<<20)) + "MB"
	case b >= 1<<10:
		return trimZero(float64(b)/(1<<10)) + "KB"
	default:
		return strconv.FormatInt(b, 10) + "B"
	}
}

func trimZero(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
