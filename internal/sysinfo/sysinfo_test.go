package sysinfo

import (
	"strings"
	"testing"
)

// paperLaptop is the machine the paper reports on slide 155.
func paperLaptop() HWSpec {
	return HWSpec{
		CPUVendor: "Intel",
		CPUModel:  "Pentium M (Dothan)",
		ClockHz:   1.5e9,
		Caches: []CacheSpec{
			{Level: "L1", SizeBytes: 32 << 10},
			{Level: "L2", SizeBytes: 2 << 20},
		},
		RAMBytes: 2 << 30,
		Disks:    []DiskSpec{{Description: "Laptop ATA disk @ 5400RPM", SizeBytes: 120 << 30}},
		Network:  "1Gb shared Ethernet",
	}
}

func TestRightSizedReport(t *testing.T) {
	spec := paperLaptop()
	if missing := spec.MissingFields(); len(missing) != 0 {
		t.Errorf("complete spec missing %v", missing)
	}
	report := spec.Report(Right)
	for _, want := range []string{"Pentium M (Dothan)", "1.5 GHz", "32KB L1 cache", "2MB L2 cache", "2GB RAM", "120GB", "5400RPM", "1Gb shared Ethernet"} {
		if !strings.Contains(report, want) {
			t.Errorf("right-sized report missing %q:\n%s", want, report)
		}
	}
	if Classify(report) != Right {
		t.Errorf("right-sized report classified as %v", Classify(report))
	}
}

func TestUnderSpecifiedReport(t *testing.T) {
	spec := HWSpec{ClockHz: 3.4e9}
	report := spec.Report(Under)
	if report != "We use a machine with 3.4 GHz." {
		t.Errorf("under report = %q", report)
	}
	if Classify(report) != Under {
		t.Errorf("one-liner classified as %v", Classify(report))
	}
	missing := spec.MissingFields()
	if len(missing) < 5 {
		t.Errorf("under spec missing only %v", missing)
	}
}

func TestOverSpecifiedReport(t *testing.T) {
	spec := paperLaptop()
	report := spec.Report(Over)
	if lines := strings.Count(report, "\n"); lines < 100 {
		t.Errorf("over report has only %d lines", lines)
	}
	if Classify(report) != Over {
		t.Errorf("lspci-style dump classified as %v", Classify(report))
	}
}

func TestDetailLevelStrings(t *testing.T) {
	for d, want := range map[DetailLevel]string{Under: "under-specified", Right: "right-sized", Over: "over-specified"} {
		if d.String() != want {
			t.Errorf("%d = %q", int(d), d.String())
		}
	}
	if DetailLevel(9).String() == "" {
		t.Error("unknown level should render")
	}
}

func TestSWSpecReport(t *testing.T) {
	sw := SWSpec{
		OS:       "Debian Linux",
		Kernel:   "2.6.18",
		Compiler: "gcc 4.1.2",
		Flags:    "-O6 -fomit-frame-pointer -DNDEBUG",
		Products: []ProductVersion{
			{Name: "MonetDB/SQL", Version: "v5.5.0/2.23.0", Source: "monetdb.org"},
		},
	}
	if missing := sw.MissingFields(); len(missing) != 0 {
		t.Errorf("complete SW spec missing %v", missing)
	}
	report := sw.Report()
	for _, want := range []string{"Debian Linux", "kernel 2.6.18", "gcc 4.1.2", "-O6", "MonetDB/SQL v5.5.0/2.23.0", "monetdb.org"} {
		if !strings.Contains(report, want) {
			t.Errorf("SW report missing %q:\n%s", want, report)
		}
	}
	incomplete := SWSpec{Products: []ProductVersion{{Name: "MySQL"}}}
	missing := incomplete.MissingFields()
	if len(missing) != 4 { // OS, compiler, flags, MySQL version
		t.Errorf("missing = %v", missing)
	}
}

// paperCPUInfo is the paper's slide-152 /proc/cpuinfo sample (abridged to
// the parsed fields, values verbatim).
const paperCPUInfo = `processor	: 0
vendor_id	: GenuineIntel
cpu family	: 6
model		: 13
model name	: Intel(R) Pentium(R) M processor 1.50GHz
stepping	: 6
cpu MHz		: 600.000
cache size	: 2048 KB
flags		: fpu vme de pse tsc msr mce cx8 mtrr pge mca cmov pat clflush
bogomips	: 1196.56
`

func TestParsePaperCPUInfo(t *testing.T) {
	info, err := ParseCPUInfo(paperCPUInfo)
	if err != nil {
		t.Fatal(err)
	}
	if info.Vendor != "GenuineIntel" {
		t.Errorf("vendor = %q", info.Vendor)
	}
	if !strings.Contains(info.ModelName, "Pentium(R) M") {
		t.Errorf("model = %q", info.ModelName)
	}
	if info.MHz != 600 {
		t.Errorf("MHz = %g (frequency-scaled reading)", info.MHz)
	}
	if info.CacheKB != 2048 {
		t.Errorf("cache = %d KB", info.CacheKB)
	}
	if len(info.Flags) < 10 {
		t.Errorf("flags = %v", info.Flags)
	}

	// The spec must use the RATED 1.5 GHz from the model name, not the
	// momentary 600 MHz frequency-scaled reading — exactly the trap the
	// paper's sample contains.
	spec := info.ToHWSpec()
	if spec.ClockHz != 1.5e9 {
		t.Errorf("clock = %g, want rated 1.5e9 not scaled 6e8", spec.ClockHz)
	}
	if len(spec.Caches) != 1 || spec.Caches[0].SizeBytes != 2048<<10 {
		t.Errorf("caches = %v", spec.Caches)
	}
}

func TestParseCPUInfoErrors(t *testing.T) {
	if _, err := ParseCPUInfo("no colons here\njust text\n"); err == nil {
		t.Error("unparseable input should error")
	}
	// Multi-processor input stops at the second block.
	two := paperCPUInfo + "processor\t: 1\nvendor_id\t: OtherVendor\n"
	info, err := ParseCPUInfo(two)
	if err != nil {
		t.Fatal(err)
	}
	if info.Vendor != "GenuineIntel" {
		t.Errorf("should keep first block, got %q", info.Vendor)
	}
}

func TestRatedHzFromModel(t *testing.T) {
	cases := []struct {
		model string
		want  float64
	}{
		{"Intel(R) Pentium(R) M processor 1.50GHz", 1.5e9},
		{"AMD AthlonMP 1533MHz", 1.533e9},
		{"Some CPU", 0},
		{"GHz", 0},
	}
	for _, c := range cases {
		if got := ratedHzFromModel(c.model); got != c.want {
			t.Errorf("ratedHz(%q) = %g, want %g", c.model, got, c.want)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtHz(50e6) != "50 MHz" {
		t.Errorf("fmtHz = %q", fmtHz(50e6))
	}
	if fmtHz(100) != "100 Hz" {
		t.Errorf("fmtHz = %q", fmtHz(100))
	}
	if fmtBytes(512) != "512B" || fmtBytes(2<<10) != "2KB" || fmtBytes(3<<20) != "3MB" {
		t.Error("fmtBytes")
	}
}
