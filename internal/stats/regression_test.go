package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	// y = 3 + 2x, exact fit.
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{3, 5, 7, 9}
	r, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.Coeffs[0], 3, 1e-9, "intercept")
	approx(t, r.Coeffs[1], 2, 1e-9, "slope")
	approx(t, r.R2, 1, 1e-12, "R2 exact")
	p, err := r.Predict([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, p, 23, 1e-9, "predict")
}

func TestFitLinearTwoPredictors(t *testing.T) {
	// The paper's 2^2 factorial model: y = 40 + 20*xa + 10*xb + 5*xa*xb,
	// fed to the general regression solver with the interaction as a
	// third predictor column.
	x := [][]float64{
		{-1, -1, 1},
		{1, -1, -1},
		{-1, 1, -1},
		{1, 1, 1},
	}
	y := []float64{15, 45, 25, 75}
	r, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.Coeffs[0], 40, 1e-9, "q0")
	approx(t, r.Coeffs[1], 20, 1e-9, "qA")
	approx(t, r.Coeffs[2], 10, 1e-9, "qB")
	approx(t, r.Coeffs[3], 5, 1e-9, "qAB")
	approx(t, r.R2, 1, 1e-12, "R2")
}

func TestFitLinearNoisy(t *testing.T) {
	// y = 1 + 0.5x with deterministic "noise"; R2 must be < 1 but high.
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		fx := float64(i)
		noise := 0.3 * math.Sin(float64(i)*1.7)
		x = append(x, []float64{fx})
		y = append(y, 1+0.5*fx+noise)
	}
	r, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.Coeffs[1], 0.5, 0.01, "slope with noise")
	if r.R2 <= 0.99 || r.R2 >= 1 {
		t.Errorf("R2 = %g, want in (0.99, 1)", r.R2)
	}
	if len(r.Resid) != 50 {
		t.Errorf("residual count = %d, want 50", len(r.Resid))
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := FitLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := FitLinear([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows should error")
	}
	// Fewer observations than coefficients.
	if _, err := FitLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined should error")
	}
	// Collinear predictors.
	x := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}}
	y := []float64{1, 2, 3, 4}
	if _, err := FitLinear(x, y); err == nil {
		t.Error("collinear predictors should error")
	}
}

func TestPredictDimensionError(t *testing.T) {
	r, err := FitLinear([][]float64{{0}, {1}, {2}}, []float64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict([]float64{1, 2}); err == nil {
		t.Error("wrong predictor count should error")
	}
}

// Property: fitting y = a + b*x recovers a and b for arbitrary small
// integers with at least two distinct x values.
func TestFitLinearRecoversLineQuick(t *testing.T) {
	f := func(a, b int8, xsRaw []int8) bool {
		// Need >= 2 distinct x values.
		seen := map[int8]bool{}
		for _, v := range xsRaw {
			seen[v] = true
		}
		if len(seen) < 2 {
			return true
		}
		var x [][]float64
		var y []float64
		for _, v := range xsRaw {
			x = append(x, []float64{float64(v)})
			y = append(y, float64(a)+float64(b)*float64(v))
		}
		r, err := FitLinear(x, y)
		if err != nil {
			return false
		}
		return math.Abs(r.Coeffs[0]-float64(a)) < 1e-6 && math.Abs(r.Coeffs[1]-float64(b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
