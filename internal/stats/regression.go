package stats

import (
	"fmt"
	"math"
)

// Regression holds a fitted least-squares linear model
// y = b0 + b1*x1 + ... + bk*xk.
//
// The design chapter of the paper derives factorial effects as the solution
// of exactly such a model over coded (-1/+1) factor values; this solver is
// the general-purpose engine behind it and is also usable directly for
// response-surface style analyses.
type Regression struct {
	Coeffs   []float64 // b0..bk; b0 is the intercept
	R2       float64   // coefficient of determination
	Resid    []float64 // residuals per observation
	N        int       // number of observations
	NPredict int       // number of predictors (k)
}

// FitLinear fits y = b0 + sum_j b_j * X[i][j] by ordinary least squares.
// X is row-major: one row per observation, one column per predictor.
// It returns an error when dimensions disagree, there are fewer
// observations than coefficients, or the normal equations are singular.
func FitLinear(xrows [][]float64, y []float64) (*Regression, error) {
	n := len(y)
	if n == 0 {
		return nil, ErrEmpty
	}
	if len(xrows) != n {
		return nil, fmt.Errorf("stats: %d predictor rows but %d responses", len(xrows), n)
	}
	k := len(xrows[0])
	for i, r := range xrows {
		if len(r) != k {
			return nil, fmt.Errorf("stats: predictor row %d has %d columns, want %d", i, len(r), k)
		}
	}
	p := k + 1 // coefficients including intercept
	if n < p {
		return nil, fmt.Errorf("stats: %d observations cannot determine %d coefficients", n, p)
	}

	// Build the design matrix with a leading 1s column and solve the
	// normal equations (X'X) b = X'y by Gaussian elimination with
	// partial pivoting. For the small systems experiment analysis
	// produces (k <= ~20) this is simple and robust enough.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p+1) // augmented with X'y
	}
	design := func(row int, col int) float64 {
		if col == 0 {
			return 1
		}
		return xrows[row][col-1]
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += design(r, i) * design(r, j)
			}
			xtx[i][j] = s
		}
		var s float64
		for r := 0; r < n; r++ {
			s += design(r, i) * y[r]
		}
		xtx[i][p] = s
	}

	coeffs, err := solveAugmented(xtx)
	if err != nil {
		return nil, err
	}

	reg := &Regression{Coeffs: coeffs, N: n, NPredict: k}
	reg.Resid = make([]float64, n)
	meanY := Mean(y)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		pred := coeffs[0]
		for j := 0; j < k; j++ {
			pred += coeffs[j+1] * xrows[r][j]
		}
		reg.Resid[r] = y[r] - pred
		ssRes += reg.Resid[r] * reg.Resid[r]
		d := y[r] - meanY
		ssTot += d * d
	}
	if ssTot == 0 {
		reg.R2 = 1
	} else {
		reg.R2 = 1 - ssRes/ssTot
	}
	return reg, nil
}

// Predict evaluates the fitted model at predictor vector x (length k).
func (r *Regression) Predict(x []float64) (float64, error) {
	if len(x) != r.NPredict {
		return 0, fmt.Errorf("stats: predict got %d predictors, model has %d", len(x), r.NPredict)
	}
	y := r.Coeffs[0]
	for j, v := range x {
		y += r.Coeffs[j+1] * v
	}
	return y, nil
}

// solveAugmented solves the augmented system [A|b] (p rows, p+1 columns) by
// Gaussian elimination with partial pivoting.
func solveAugmented(m [][]float64) ([]float64, error) {
	p := len(m)
	for col := 0; col < p; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular system (column %d); predictors are collinear", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < p; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= p; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	out := make([]float64, p)
	for r := p - 1; r >= 0; r-- {
		s := m[r][p]
		for c := r + 1; c < p; c++ {
			s -= m[r][c] * out[c]
		}
		out[r] = s / m[r][r]
	}
	return out, nil
}
