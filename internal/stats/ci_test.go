package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanCI(t *testing.T) {
	// n=4, mean=10, sd=2 => se=1, t(0.975, 3)=3.182.
	xs := []float64{8, 9, 11, 12}
	iv, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, iv.Mean, 10, 1e-12, "ci mean")
	se := StdErr(xs)
	want := TQuantile(0.975, 3) * se
	approx(t, iv.HalfWidth(), want, 1e-9, "ci halfwidth")
	if !iv.Contains(10) {
		t.Error("interval should contain its mean")
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Error("singleton sample should error")
	}
	if _, err := MeanCI([]float64{1, 2}, 1.5); err == nil {
		t.Error("confidence > 1 should error")
	}
	if _, err := MeanCI([]float64{1, 2}, 0); err == nil {
		t.Error("confidence 0 should error")
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := Interval{Lo: 0, Hi: 2}
	b := Interval{Lo: 1, Hi: 3}
	c := Interval{Lo: 2.5, Hi: 4}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
	if !b.Overlaps(c) {
		t.Error("b and c should overlap")
	}
}

func TestCompareAlternativesDisjoint(t *testing.T) {
	a := []float64{1.0, 1.1, 0.9, 1.05}
	b := []float64{5.0, 5.1, 4.9, 5.05}
	cmp, err := CompareAlternatives(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != ALower {
		t.Errorf("verdict = %v, want ALower", cmp.Verdict)
	}
	cmp2, _ := CompareAlternatives(b, a, 0.95)
	if cmp2.Verdict != BLower {
		t.Errorf("verdict = %v, want BLower", cmp2.Verdict)
	}
}

func TestCompareAlternativesIndifferent(t *testing.T) {
	// Identical noisy samples: intervals overlap and each mean is inside
	// the other — the paper's "statistically indifferent" case.
	a := []float64{10, 12, 9, 11, 10.5}
	b := []float64{10.2, 11.8, 9.1, 11.2, 10.4}
	cmp, err := CompareAlternatives(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != Indifferent {
		t.Errorf("verdict = %v, want Indifferent", cmp.Verdict)
	}
}

func TestCompareAlternativesNeedsTTest(t *testing.T) {
	// Overlapping intervals but means outside each other's interval.
	a := []float64{10.0, 10.1, 9.9, 10.05, 9.95}
	b := []float64{10.15, 10.25, 10.05, 10.2, 10.1}
	cmp, err := CompareAlternatives(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Verdict != NeedsTTest && cmp.Verdict != BLower {
		t.Errorf("verdict = %v, want NeedsTTest or a decision", cmp.Verdict)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Indifferent: "indifferent",
		ALower:      "A lower",
		BLower:      "B lower",
		NeedsTTest:  "needs t-test",
	} {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), v.String(), want)
		}
	}
	if Verdict(99).String() == "" {
		t.Error("unknown verdict should still render")
	}
}

func TestWelchT(t *testing.T) {
	// Hand-computable case: equal variances 2.5, n=5 each, mean gap 1.
	// sa=sb=0.5, se=1, t=-1, df = 1 / (0.25/4 + 0.25/4) = 8.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 3, 4, 5, 6}
	tstat, df, p, err := WelchT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tstat, -1, 1e-9, "welch t")
	approx(t, df, 8, 1e-9, "welch df")
	want := 2 * (1 - TCDF(1, 8))
	approx(t, p, want, 1e-9, "welch p")
	if p < 0.3 || p > 0.4 {
		t.Errorf("welch p = %g, want ~0.347", p)
	}
}

func TestWelchTEdge(t *testing.T) {
	if _, _, _, err := WelchT([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("short sample should error")
	}
	// Zero-variance equal samples: p = 1.
	_, _, p, err := WelchT([]float64{5, 5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, p, 1, 1e-12, "identical zero-variance p")
	// Zero-variance different samples: p = 0.
	_, _, p, err = WelchT([]float64{5, 5}, []float64{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, p, 0, 1e-12, "distinct zero-variance p")
}

// Property: the CI at higher confidence is wider.
func TestCIWidthMonotoneQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		allSame := true
		for i, v := range raw {
			xs[i] = float64(v)
			if v != raw[0] {
				allSame = false
			}
		}
		if allSame {
			return true
		}
		iv90, err1 := MeanCI(xs, 0.90)
		iv99, err2 := MeanCI(xs, 0.99)
		if err1 != nil || err2 != nil {
			return false
		}
		return iv99.HalfWidth() >= iv90.HalfWidth()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the sample mean is always inside its own CI.
func TestCIContainsMeanQuick(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		iv, err := MeanCI(xs, 0.95)
		if err != nil {
			return false
		}
		return iv.Contains(Mean(xs)) && !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairedT(t *testing.T) {
	// Same-workload before/after with a consistent 1-unit improvement
	// plus per-pair noise that cancels in differences only partially.
	before := []float64{10, 12, 14, 16, 18}
	after := []float64{9, 11, 13, 15, 17}
	tstat, df, p, ci, err := PairedT(before, after, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, df, 4, 0, "paired df")
	// Differences are exactly 1 with zero variance: infinite t, p=0.
	if !math.IsInf(tstat, 1) || p != 0 {
		t.Errorf("constant-difference t=%v p=%v", tstat, p)
	}
	approx(t, ci.Mean, 1, 1e-12, "diff mean")

	// Noisy but positive differences.
	after2 := []float64{9.5, 10.8, 13.4, 14.6, 17.2}
	tstat, _, p, ci, err = PairedT(before, after2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if tstat <= 0 || p >= 0.05 {
		t.Errorf("t=%g p=%g, want significant positive difference", tstat, p)
	}
	if ci.Contains(0) {
		t.Error("CI of a significant difference should exclude 0")
	}

	// Identical pairs: p = 1.
	_, _, p, _, err = PairedT(before, before, 0.95)
	if err != nil || p != 1 {
		t.Errorf("identical pairs p = %g, %v", p, err)
	}

	// Errors.
	if _, _, _, _, err := PairedT([]float64{1}, []float64{1, 2}, 0.95); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, _, _, err := PairedT([]float64{1}, []float64{1}, 0.95); err == nil {
		t.Error("single pair should error")
	}
}

func TestRelHalfWidth(t *testing.T) {
	iv := Interval{Mean: 100, Lo: 95, Hi: 105}
	approx(t, iv.RelHalfWidth(), 0.05, 1e-12, "rel half-width")

	// Sign of the mean is irrelevant: precision is about magnitude.
	neg := Interval{Mean: -100, Lo: -105, Hi: -95}
	approx(t, neg.RelHalfWidth(), 0.05, 1e-12, "negative mean")

	// A zero mean makes relative precision unattainable unless the
	// interval is degenerate — the stopping rule must stay conservative.
	if r := (Interval{Mean: 0, Lo: -1, Hi: 1}).RelHalfWidth(); !math.IsInf(r, 1) {
		t.Errorf("zero mean with width should be +Inf, got %g", r)
	}
	if r := (Interval{Mean: 0, Lo: 0, Hi: 0}).RelHalfWidth(); r != 0 {
		t.Errorf("degenerate zero interval should be 0, got %g", r)
	}

	// Consistency with MeanCI on a real sample.
	ci, err := MeanCI([]float64{9.9, 10.0, 10.1, 10.0, 9.95, 10.05}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ci.RelHalfWidth(), ci.HalfWidth()/ci.Mean, 1e-12, "MeanCI consistency")
}

func TestQueriesPerSecond(t *testing.T) {
	approx(t, QueriesPerSecond(100, 4), 25, 1e-12, "qps")
	if !math.IsNaN(QueriesPerSecond(10, 0)) {
		t.Error("zero elapsed should be NaN")
	}
}
