package stats

import (
	"fmt"
	"math"
)

// MinCellCount is the paper's rule of thumb for histograms: "each cell in a
// histogram should have at least five data points" (slides 128, 144).
const MinCellCount = 5

// Bin is one histogram cell: the half-open interval [Lo, Hi) and the number
// of observations that fell into it. The final bin is closed on both ends.
type Bin struct {
	Lo, Hi float64
	Count  int
}

// Label renders the bin interval in the paper's "[lo,hi)" notation.
func (b Bin) Label() string { return fmt.Sprintf("[%g,%g)", b.Lo, b.Hi) }

// Histogram is a binned view of a sample.
type Histogram struct {
	Bins []Bin
	N    int // total observations
}

// NewHistogram bins xs into `cells` equal-width bins spanning [min, max].
// It returns an error for an empty sample or non-positive cell count.
func NewHistogram(xs []float64, cells int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if cells <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 cell, got %d", cells)
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1 // degenerate sample: one covering bin
	}
	return NewHistogramRange(xs, cells, lo, hi)
}

// NewHistogramRange bins xs into `cells` equal-width bins spanning
// [lo, hi). Observations outside the range are dropped (and excluded from
// N). The last bin includes hi.
func NewHistogramRange(xs []float64, cells int, lo, hi float64) (*Histogram, error) {
	if cells <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 cell, got %d", cells)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%g,%g) is empty", lo, hi)
	}
	h := &Histogram{Bins: make([]Bin, cells)}
	width := (hi - lo) / float64(cells)
	for i := range h.Bins {
		h.Bins[i].Lo = lo + float64(i)*width
		h.Bins[i].Hi = lo + float64(i+1)*width
	}
	h.Bins[cells-1].Hi = hi // avoid float drift at the top edge
	for _, x := range xs {
		if x < lo || x > hi {
			continue
		}
		idx := int((x - lo) / width)
		if idx >= cells { // x == hi
			idx = cells - 1
		}
		h.Bins[idx].Count++
		h.N++
	}
	return h, nil
}

// MinCount returns the smallest cell count.
func (h *Histogram) MinCount() int {
	if len(h.Bins) == 0 {
		return 0
	}
	m := h.Bins[0].Count
	for _, b := range h.Bins[1:] {
		if b.Count < m {
			m = b.Count
		}
	}
	return m
}

// SatisfiesCellRule reports whether every cell holds at least MinCellCount
// points — the paper's rule of thumb for trustworthy histograms.
func (h *Histogram) SatisfiesCellRule() bool { return h.MinCount() >= MinCellCount }

// Coarsen merges adjacent bins pairwise (cell count halves, rounding up for
// an odd count), the remedy the paper illustrates on slide 144 when cells
// are under-populated: [0,2)...[10,12) becomes [0,6),[6,12).
func (h *Histogram) Coarsen() *Histogram {
	if len(h.Bins) <= 1 {
		cp := *h
		cp.Bins = append([]Bin(nil), h.Bins...)
		return &cp
	}
	out := &Histogram{N: h.N}
	for i := 0; i < len(h.Bins); i += 2 {
		b := h.Bins[i]
		if i+1 < len(h.Bins) {
			b.Hi = h.Bins[i+1].Hi
			b.Count += h.Bins[i+1].Count
		}
		out.Bins = append(out.Bins, b)
	}
	return out
}

// AutoBin picks a cell count for xs: it starts from the Sturges suggestion
// ceil(log2 n)+1 and coarsens until the paper's >=5-points-per-cell rule
// holds (or a single bin remains). It returns the resulting histogram.
func AutoBin(xs []float64) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	cells := int(math.Ceil(math.Log2(float64(len(xs))))) + 1
	if cells < 1 {
		cells = 1
	}
	h, err := NewHistogram(xs, cells)
	if err != nil {
		return nil, err
	}
	for !h.SatisfiesCellRule() && len(h.Bins) > 1 {
		h = h.Coarsen()
	}
	return h, nil
}
