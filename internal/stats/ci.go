package stats

import (
	"fmt"
	"math"
)

// Interval is a two-sided confidence interval for a mean.
//
// The paper's "pictorial games" chapter warns against plotting random
// quantities without confidence intervals: overlapping intervals can mean
// the two quantities are statistically indifferent. Interval and
// CompareAlternatives encode exactly that check.
type Interval struct {
	Mean       float64
	Lo, Hi     float64
	Confidence float64 // e.g. 0.95
	N          int
}

// HalfWidth returns half the interval width.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// RelHalfWidth returns the half-width relative to the magnitude of the
// mean — the precision of the measurement in the paper's sense ("the
// mean is known to within ±r%"). Sequential analysis stops replicating
// once this drops below a target. For a zero mean the ratio is
// undefined: a degenerate interval reports 0 (perfectly precise), any
// other reports +Inf (relative precision unattainable), so a
// "RelHalfWidth <= target" stopping rule stays conservative.
func (iv Interval) RelHalfWidth() float64 {
	hw := iv.HalfWidth()
	if iv.Mean == 0 {
		if hw == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return hw / math.Abs(iv.Mean)
}

// Contains reports whether v lies inside the interval (inclusive).
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Overlaps reports whether two intervals overlap.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// String renders the interval as "mean [lo, hi] @95%".
func (iv Interval) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g] @%.0f%%", iv.Mean, iv.Lo, iv.Hi, iv.Confidence*100)
}

// MeanCI returns the confidence interval for the mean of xs at the given
// confidence level (e.g. 0.95), using the Student-t distribution with n-1
// degrees of freedom. It returns an error for samples with fewer than two
// observations or a confidence outside (0, 1).
func MeanCI(xs []float64, confidence float64) (Interval, error) {
	if len(xs) < 2 {
		return Interval{}, fmt.Errorf("stats: confidence interval needs at least 2 observations, got %d", len(xs))
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence must be in (0,1), got %g", confidence)
	}
	m := Mean(xs)
	se := StdErr(xs)
	df := float64(len(xs) - 1)
	alpha := 1 - confidence
	t := TQuantile(1-alpha/2, df)
	return Interval{
		Mean:       m,
		Lo:         m - t*se,
		Hi:         m + t*se,
		Confidence: confidence,
		N:          len(xs),
	}, nil
}

// Verdict classifies the outcome of comparing two measured alternatives.
type Verdict int

const (
	// Indifferent means the confidence intervals overlap AND each mean
	// lies within the other's interval: no statistically meaningful
	// difference can be claimed.
	Indifferent Verdict = iota
	// ALower means alternative A is statistically lower (better, for a
	// time metric) than B.
	ALower
	// BLower means alternative B is statistically lower than A.
	BLower
	// NeedsTTest means the intervals overlap but neither mean is inside
	// the other's interval; a t-test on the difference is required to
	// decide (Jain's three-case rule for comparing alternatives).
	NeedsTTest
)

func (v Verdict) String() string {
	switch v {
	case Indifferent:
		return "indifferent"
	case ALower:
		return "A lower"
	case BLower:
		return "B lower"
	case NeedsTTest:
		return "needs t-test"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Comparison is the result of CompareAlternatives.
type Comparison struct {
	A, B    Interval
	Verdict Verdict
}

// CompareAlternatives applies the visual test the paper recommends for two
// unpaired alternatives measured with replication:
//
//   - disjoint intervals: the one with the lower mean is better;
//   - overlapping intervals with each mean inside the other interval:
//     statistically indifferent;
//   - overlapping otherwise: a t-test is needed.
func CompareAlternatives(a, b []float64, confidence float64) (Comparison, error) {
	ia, err := MeanCI(a, confidence)
	if err != nil {
		return Comparison{}, fmt.Errorf("alternative A: %w", err)
	}
	ib, err := MeanCI(b, confidence)
	if err != nil {
		return Comparison{}, fmt.Errorf("alternative B: %w", err)
	}
	c := Comparison{A: ia, B: ib}
	switch {
	case !ia.Overlaps(ib):
		if ia.Mean < ib.Mean {
			c.Verdict = ALower
		} else {
			c.Verdict = BLower
		}
	case ia.Contains(ib.Mean) && ib.Contains(ia.Mean):
		c.Verdict = Indifferent
	default:
		c.Verdict = NeedsTTest
	}
	return c, nil
}

// WelchT performs Welch's unequal-variance t-test on two samples and returns
// the t statistic, the Welch-Satterthwaite degrees of freedom, and the
// two-sided p-value.
func WelchT(a, b []float64) (t, df, p float64, err error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0, 0, fmt.Errorf("stats: Welch t-test needs >=2 observations per sample, got %d and %d", len(a), len(b))
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		if ma == mb {
			return 0, na + nb - 2, 1, nil
		}
		return math.Inf(sign(ma - mb)), na + nb - 2, 0, nil
	}
	t = (ma - mb) / se
	df = (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p = 2 * (1 - TCDF(math.Abs(t), df))
	return t, df, p, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// PairedT performs a paired t-test: for before/after measurements on the
// SAME workloads (e.g. per-query times of two systems over the same query
// set), the test runs on the per-pair differences. It returns the t
// statistic, degrees of freedom (n-1), the two-sided p-value, and the
// confidence interval of the mean difference at the given confidence.
func PairedT(a, b []float64, confidence float64) (t, df, p float64, diffCI Interval, err error) {
	if len(a) != len(b) {
		return 0, 0, 0, Interval{}, fmt.Errorf("stats: paired samples must have equal length, got %d and %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, 0, 0, Interval{}, fmt.Errorf("stats: paired t-test needs >= 2 pairs, got %d", len(a))
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	diffCI, err = MeanCI(diffs, confidence)
	if err != nil {
		return 0, 0, 0, Interval{}, err
	}
	se := StdErr(diffs)
	df = float64(len(a) - 1)
	if se == 0 {
		if Mean(diffs) == 0 {
			return 0, df, 1, diffCI, nil
		}
		return math.Inf(sign(Mean(diffs))), df, 0, diffCI, nil
	}
	t = Mean(diffs) / se
	p = 2 * (1 - TCDF(math.Abs(t), df))
	return t, df, p, diffCI, nil
}

// QueriesPerSecond is the paper's basic throughput metric: completed
// queries per elapsed second. Returns NaN for non-positive elapsed time.
func QueriesPerSecond(queries int, elapsedSeconds float64) float64 {
	if elapsedSeconds <= 0 {
		return math.NaN()
	}
	return float64(queries) / elapsedSeconds
}
