package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %g)", msg, got, want, tol)
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Sum(xs), 40, 1e-12, "sum")
	approx(t, Variance(xs), 32.0/7, 1e-12, "variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "stddev")
	approx(t, Min(xs), 2, 0, "min")
	approx(t, Max(xs), 9, 0, "max")
	approx(t, Median(xs), 4.5, 1e-12, "median")
}

func TestEmptyAndDegenerate(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("variance of singleton should be NaN")
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("median of empty should be NaN")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	approx(t, Percentile(xs, 0), 1, 0, "p0")
	approx(t, Percentile(xs, 100), 10, 0, "p100")
	approx(t, Percentile(xs, 50), 5.5, 1e-12, "p50")
	approx(t, Percentile(xs, 90), 9.1, 1e-9, "p90")
	if !math.IsNaN(Percentile(xs, -1)) || !math.IsNaN(Percentile(xs, 101)) {
		t.Error("out-of-range percentile should be NaN")
	}
	// Percentile must not modify its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	approx(t, GeoMean([]float64{1, 4}), 2, 1e-12, "geomean{1,4}")
	approx(t, GeoMean([]float64{2, 2, 2}), 2, 1e-12, "geomean constant")
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("geomean with nonpositive should be NaN")
	}
}

func TestSummaryString(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestSpeedupScaleUp(t *testing.T) {
	approx(t, Speedup(10, 5), 2, 1e-12, "speedup")
	if !math.IsNaN(Speedup(1, 0)) {
		t.Error("speedup by zero should be NaN")
	}
	// Doubling work doubles time: perfect scale-up of 1.
	approx(t, ScaleUp(1, 10, 2, 20), 1, 1e-12, "perfect scaleup")
	// Doubling work only adds 50% time: scale-up 4/3.
	approx(t, ScaleUp(1, 10, 2, 15), 4.0/3, 1e-12, "superlinear")
}

func TestCoefficientOfVariation(t *testing.T) {
	cv := CoefficientOfVariation([]float64{9, 10, 11})
	approx(t, cv, 1.0/10, 1e-12, "cv")
	if !math.IsNaN(CoefficientOfVariation([]float64{-1, 1})) {
		t.Error("cv with zero mean should be NaN")
	}
}

// Property: mean is translation-equivariant and scale-equivariant.
func TestMeanPropertiesQuick(t *testing.T) {
	f := func(raw []uint8, shift uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		return math.Abs(Mean(ys)-(Mean(xs)+float64(shift))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation-invariant.
func TestVariancePropertiesQuick(t *testing.T) {
	f := func(raw []uint8, shift uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		return math.Abs(Variance(ys)-Variance(xs)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: min <= median <= max, and min <= mean <= max.
func TestOrderingPropertiesQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		lo, hi := Min(xs), Max(xs)
		med, mean := Median(xs), Mean(xs)
		return lo <= med && med <= hi && lo-1e-9 <= mean && mean <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSumSquaresTotal(t *testing.T) {
	// Paper 2^2 example responses: 15, 45, 25, 75; mean 40.
	ys := []float64{15, 45, 25, 75}
	// SST = 625+25+225+1225 = 2100.
	approx(t, SumSquaresTotal(ys), 2100, 1e-9, "SST")
}
