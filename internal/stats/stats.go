// Package stats provides the statistical machinery that the paper's
// methodology rests on: descriptive statistics, Student-t confidence
// intervals, comparison of alternatives via interval overlap, least-squares
// regression, histograms with the paper's cell-size rules, and the
// sum-of-squares decomposition used by allocation of variation.
//
// Everything is deterministic and pure; no global state.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// otherwise NaN is returned. The geometric mean is the correct way to
// average ratios such as the DBG/OPT relative execution times in the paper.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Variance returns the unbiased sample variance (divisor n-1).
// It returns NaN when fewer than two observations are supplied.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation (square root of Variance).
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean, s/sqrt(n).
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two central elements for
// even n). It does not modify xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile of xs (0 <= p <= 100) using linear
// interpolation between closest ranks. It does not modify xs and returns NaN
// for an empty sample or out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the descriptive statistics of a sample, in the shape a
// measurement report needs: location, spread, and extremes.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	StdErr float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
	if len(xs) >= 2 {
		s.StdDev = StdDev(xs)
		s.StdErr = StdErr(xs)
	}
	return s, nil
}

// String renders the summary on one line, suitable for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g se=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.StdErr, s.Min, s.Median, s.Max)
}

// SumSquaresTotal returns SST = sum (yi - mean)^2, the total variation of y
// that allocation of variation distributes among factors (paper slides
// 81-85).
func SumSquaresTotal(ys []float64) float64 {
	m := Mean(ys)
	var ss float64
	for _, y := range ys {
		d := y - m
		ss += d * d
	}
	return ss
}

// CoefficientOfVariation returns StdDev/Mean, a scale-free measure of
// measurement noise. Experiment reports use it to check that variation due
// to a factor dominates variation due to experimental error (common mistake
// #1 in the paper).
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// Speedup returns base/improved, the paper's "speed-up" comparison metric.
// It returns NaN if improved is zero.
func Speedup(base, improved float64) float64 {
	if improved == 0 {
		return math.NaN()
	}
	return base / improved
}

// ScaleUp returns (workBig/workSmall)/(timeBig/timeSmall): 1.0 means perfect
// scale-up (doubling the work doubles the time), >1 means better than
// linear.
func ScaleUp(workSmall, timeSmall, workBig, timeBig float64) float64 {
	if workSmall == 0 || timeSmall == 0 || timeBig == 0 {
		return math.NaN()
	}
	return (workBig / workSmall) / (timeBig / timeSmall)
}
