package stats

import "math"

// This file implements the Student-t distribution from scratch (stdlib has
// no statistics package). The CDF goes through the regularized incomplete
// beta function; quantiles invert the CDF by bisection. Accuracy is far
// better than what confidence-interval work needs (~1e-10).

// lnGamma returns the natural log of the Gamma function (Lanczos
// approximation, g=7, n=9 coefficients).
func lnGamma(x float64) float64 {
	if x < 0.5 {
		// Reflection formula.
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - lnGamma(1-x)
	}
	x--
	coeffs := [...]float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	a := coeffs[0]
	t := x + 7.5
	for i := 1; i < len(coeffs); i++ {
		a += coeffs[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// betaContinuedFraction evaluates the continued fraction for the incomplete
// beta function (Lentz's method, as in Numerical Recipes).
func betaContinuedFraction(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegularizedIncompleteBeta returns I_x(a, b) for 0 <= x <= 1.
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lnBeta := lnGamma(a+b) - lnGamma(a) - lnGamma(b)
	front := math.Exp(lnBeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(a, b, x) / a
	}
	return 1 - front*betaContinuedFraction(b, a, 1-x)/b
}

// TCDF returns P(T <= t) for a Student-t variable with df degrees of
// freedom. df must be positive.
func TCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * RegularizedIncompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the value t such that P(T <= t) = p for a Student-t
// variable with df degrees of freedom, computed by bisection on TCDF.
// p must be in (0, 1).
func TQuantile(p, df float64) float64 {
	if df <= 0 || p <= 0 || p >= 1 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	// Bracket the root; t quantiles for p in (1e-12, 1-1e-12) fit well
	// within +/- 1e8 even for df slightly above 0.
	lo, hi := -1e8, 1e8
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(lo)) {
			break
		}
	}
	return (lo + hi) / 2
}

// NormalCDF returns the standard normal CDF Phi(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) for
// p in (0, 1), by bisection on NormalCDF.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if NormalCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-14 {
			break
		}
	}
	return (lo + hi) / 2
}
