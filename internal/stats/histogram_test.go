package stats

import (
	"testing"
	"testing/quick"
)

// paperResponseTimes reconstructs a sample matching the paper's slide 144
// histogram: cells [0,2)...[10,12) with counts 3, 6, 9, 12, 4, 2.
func paperResponseTimes() []float64 {
	counts := []int{3, 6, 9, 12, 4, 2}
	var xs []float64
	for cell, n := range counts {
		for i := 0; i < n; i++ {
			xs = append(xs, float64(cell)*2+0.5+float64(i)*0.1)
		}
	}
	return xs
}

func TestPaperHistogramFineBins(t *testing.T) {
	xs := paperResponseTimes()
	h, err := NewHistogramRange(xs, 6, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 6, 9, 12, 4, 2}
	for i, w := range want {
		if h.Bins[i].Count != w {
			t.Errorf("bin %d count = %d, want %d", i, h.Bins[i].Count, w)
		}
	}
	if h.SatisfiesCellRule() {
		t.Error("fine binning has cells with <5 points; rule should fail")
	}
	if h.MinCount() != 2 {
		t.Errorf("min count = %d, want 2", h.MinCount())
	}
}

func TestPaperHistogramCoarsened(t *testing.T) {
	// The paper's remedy: merge to [0,6), [6,12) giving 18 and 18.
	xs := paperResponseTimes()
	h, err := NewHistogramRange(xs, 6, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Coarsen() // 3 cells: [0,4)=9, [4,8)=21, [8,12)=6
	c = &Histogram{Bins: []Bin{
		{Lo: 0, Hi: 6, Count: h.Bins[0].Count + h.Bins[1].Count + h.Bins[2].Count},
		{Lo: 6, Hi: 12, Count: h.Bins[3].Count + h.Bins[4].Count + h.Bins[5].Count},
	}, N: h.N}
	if c.Bins[0].Count != 18 || c.Bins[1].Count != 18 {
		t.Errorf("2-cell counts = %d,%d, want 18,18", c.Bins[0].Count, c.Bins[1].Count)
	}
	if !c.SatisfiesCellRule() {
		t.Error("coarse binning should satisfy the >=5 rule")
	}
}

func TestCoarsenHalvesBins(t *testing.T) {
	xs := paperResponseTimes()
	h, _ := NewHistogramRange(xs, 6, 0, 12)
	c := h.Coarsen()
	if len(c.Bins) != 3 {
		t.Fatalf("coarsened bins = %d, want 3", len(c.Bins))
	}
	if c.Bins[0].Count != 9 || c.Bins[1].Count != 21 || c.Bins[2].Count != 6 {
		t.Errorf("coarsened counts = %v", c.Bins)
	}
	// Total preserved.
	total := 0
	for _, b := range c.Bins {
		total += b.Count
	}
	if total != h.N {
		t.Errorf("coarsen lost observations: %d != %d", total, h.N)
	}
}

func TestCoarsenOddBins(t *testing.T) {
	h := &Histogram{Bins: []Bin{
		{Lo: 0, Hi: 1, Count: 1},
		{Lo: 1, Hi: 2, Count: 2},
		{Lo: 2, Hi: 3, Count: 3},
	}, N: 6}
	c := h.Coarsen()
	if len(c.Bins) != 2 {
		t.Fatalf("bins = %d, want 2", len(c.Bins))
	}
	if c.Bins[0].Count != 3 || c.Bins[1].Count != 3 {
		t.Errorf("counts = %v", c.Bins)
	}
	// Single-bin histogram coarsens to itself.
	h1 := &Histogram{Bins: []Bin{{Lo: 0, Hi: 1, Count: 5}}, N: 5}
	if got := h1.Coarsen(); len(got.Bins) != 1 || got.Bins[0].Count != 5 {
		t.Errorf("single-bin coarsen = %v", got.Bins)
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	// Bins are half-open [lo,hi): 5 lands in [5,10]; 10 (the top edge)
	// also lands in the final bin.
	h, err := NewHistogramRange([]float64{0, 5, 10}, 2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bins[0].Count != 1 || h.Bins[1].Count != 2 {
		t.Errorf("edge binning: %v", h.Bins)
	}
	// Out-of-range values are dropped.
	h2, _ := NewHistogramRange([]float64{-1, 5, 11}, 2, 0, 10)
	if h2.N != 1 {
		t.Errorf("N = %d, want 1 (out of range dropped)", h2.N)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 4); err != ErrEmpty {
		t.Errorf("empty err = %v", err)
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero cells should error")
	}
	if _, err := NewHistogramRange([]float64{1}, 2, 5, 5); err == nil {
		t.Error("empty range should error")
	}
}

func TestHistogramDegenerateSample(t *testing.T) {
	h, err := NewHistogram([]float64{7, 7, 7, 7, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 5 {
		t.Errorf("N = %d, want 5", h.N)
	}
}

func TestAutoBinSatisfiesRule(t *testing.T) {
	h, err := AutoBin(paperResponseTimes())
	if err != nil {
		t.Fatal(err)
	}
	if !h.SatisfiesCellRule() && len(h.Bins) > 1 {
		t.Errorf("AutoBin result violates cell rule: %v", h.Bins)
	}
}

func TestBinLabel(t *testing.T) {
	b := Bin{Lo: 0, Hi: 2}
	if b.Label() != "[0,2)" {
		t.Errorf("label = %q", b.Label())
	}
}

// Property: AutoBin never loses observations and either satisfies the cell
// rule or ends with a single bin.
func TestAutoBinPropertiesQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		h, err := AutoBin(xs)
		if err != nil {
			return false
		}
		total := 0
		for _, b := range h.Bins {
			total += b.Count
		}
		return total == len(xs) && (h.SatisfiesCellRule() || len(h.Bins) == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
