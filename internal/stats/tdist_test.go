package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLnGamma(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
	}
	for _, c := range cases {
		approx(t, lnGamma(c.x), c.want, 1e-10, "lnGamma")
	}
}

func TestTCDFKnownValues(t *testing.T) {
	// Classic t-table values: quantile t such that CDF(t) = 0.975.
	cases := []struct{ df, t975 float64 }{
		{1, 12.706},
		{2, 4.303},
		{5, 2.571},
		{10, 2.228},
		{30, 2.042},
		{120, 1.980},
	}
	for _, c := range cases {
		got := TQuantile(0.975, c.df)
		approx(t, got, c.t975, 0.01, "t quantile df")
	}
}

func TestTCDFSymmetry(t *testing.T) {
	for _, df := range []float64{1, 3, 10, 50} {
		for _, x := range []float64{0.5, 1, 2, 5} {
			p1 := TCDF(x, df)
			p2 := TCDF(-x, df)
			approx(t, p1+p2, 1, 1e-10, "t CDF symmetry")
		}
	}
	approx(t, TCDF(0, 7), 0.5, 1e-12, "t CDF at 0")
}

func TestTQuantileRoundTrip(t *testing.T) {
	f := func(pRaw, dfRaw uint8) bool {
		p := 0.01 + 0.98*float64(pRaw)/255 // p in [0.01, 0.99]
		df := 1 + float64(dfRaw%60)
		q := TQuantile(p, df)
		return math.Abs(TCDF(q, df)-p) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLargeDFApproachesNormal(t *testing.T) {
	// For large df, t quantile approaches the normal quantile 1.95996.
	got := TQuantile(0.975, 1e6)
	approx(t, got, 1.959964, 1e-3, "t(inf) ~ normal")
}

func TestNormal(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	approx(t, NormalCDF(1.959964), 0.975, 1e-6, "Phi(1.96)")
	approx(t, NormalQuantile(0.975), 1.959964, 1e-5, "z(0.975)")
	approx(t, NormalQuantile(0.5), 0, 1e-9, "z(0.5)")
	if !math.IsNaN(NormalQuantile(0)) || !math.IsNaN(NormalQuantile(1)) {
		t.Error("quantile at 0/1 should be NaN")
	}
}

func TestIncompleteBetaEdges(t *testing.T) {
	approx(t, RegularizedIncompleteBeta(2, 3, 0), 0, 0, "I_0")
	approx(t, RegularizedIncompleteBeta(2, 3, 1), 1, 0, "I_1")
	// I_x(1,1) = x (uniform distribution CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		approx(t, RegularizedIncompleteBeta(1, 1, x), x, 1e-10, "I_x(1,1)")
	}
}

func TestTCDFInvalidDF(t *testing.T) {
	if !math.IsNaN(TCDF(1, 0)) || !math.IsNaN(TCDF(1, -3)) {
		t.Error("non-positive df should yield NaN")
	}
	if !math.IsNaN(TQuantile(0.5, -1)) {
		t.Error("non-positive df quantile should yield NaN")
	}
}
