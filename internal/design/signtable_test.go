package design

import (
	"testing"
	"testing/quick"
)

func twoFactors() []Factor {
	return []Factor{
		MustFactor("A", "A1", "A2"),
		MustFactor("B", "B1", "B2"),
	}
}

func TestEffectAlgebra(t *testing.T) {
	a, b := MainEffect(0), MainEffect(1)
	ab := a.Mul(b)
	if ab.String() != "AB" {
		t.Errorf("AB = %q", ab.String())
	}
	if a.Mul(a) != I {
		t.Error("A*A should be I")
	}
	if ab.Mul(a) != b {
		t.Error("AB*A should be B")
	}
	if ab.Order() != 2 || a.Order() != 1 || I.Order() != 0 {
		t.Error("orders wrong")
	}
	if I.String() != "I" {
		t.Errorf("I = %q", I.String())
	}
}

func TestParseEffect(t *testing.T) {
	e, err := ParseEffect("ABC")
	if err != nil {
		t.Fatal(err)
	}
	if e != MainEffect(0)|MainEffect(1)|MainEffect(2) {
		t.Errorf("ABC = %v", e)
	}
	if _, err := ParseEffect(""); err == nil {
		t.Error("empty should error")
	}
	if _, err := ParseEffect("A1"); err == nil {
		t.Error("digit should error")
	}
	if _, err := ParseEffect("AA"); err == nil {
		t.Error("repeated factor should error")
	}
	i, err := ParseEffect("i")
	if err != nil || i != I {
		t.Errorf("parse I = %v, %v", i, err)
	}
}

func TestEffectNameWith(t *testing.T) {
	factors := []Factor{MustFactor("memory", "4", "16"), MustFactor("cache", "1", "2")}
	e := MainEffect(0).Mul(MainEffect(1))
	if got := e.NameWith(factors); got != "memory*cache" {
		t.Errorf("NameWith = %q", got)
	}
	if got := I.NameWith(factors); got != "I" {
		t.Errorf("NameWith(I) = %q", got)
	}
}

// TestSignTable22 pins the canonical 2^2 sign table from paper slide 74:
//
//	Experiment  A   B   AB
//	1          -1  -1    1
//	2           1  -1   -1   (our row order: last factor fastest, so
//	3          -1   1   -1    rows 2 and 3 swap vs the paper; the set
//	4           1   1    1    of rows is identical)
func TestSignTable22(t *testing.T) {
	st, err := NewSignTable(twoFactors())
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 4 {
		t.Fatalf("runs = %d", st.Runs)
	}
	a, b := MainEffect(0), MainEffect(1)
	wantA := []float64{-1, -1, 1, 1}
	wantB := []float64{-1, 1, -1, 1}
	for r := 0; r < 4; r++ {
		if st.Sign(r, a) != wantA[r] {
			t.Errorf("A[%d] = %g, want %g", r, st.Sign(r, a), wantA[r])
		}
		if st.Sign(r, b) != wantB[r] {
			t.Errorf("B[%d] = %g, want %g", r, st.Sign(r, b), wantB[r])
		}
		if st.Sign(r, a.Mul(b)) != wantA[r]*wantB[r] {
			t.Errorf("AB[%d] inconsistent", r)
		}
		if st.Sign(r, I) != 1 {
			t.Errorf("I[%d] != 1", r)
		}
	}
}

func TestSignTableProperties(t *testing.T) {
	factors := []Factor{
		MustFactor("A", "-", "+"), MustFactor("B", "-", "+"), MustFactor("C", "-", "+"),
	}
	st, err := NewSignTable(factors)
	if err != nil {
		t.Fatal(err)
	}
	effects := st.AllEffects()
	if len(effects) != 8 {
		t.Fatalf("effects = %d", len(effects))
	}
	for _, e := range effects {
		if e == I {
			if st.ZeroSum(e) {
				t.Error("I column must not be zero-sum")
			}
			continue
		}
		if !st.ZeroSum(e) {
			t.Errorf("column %s should sum to zero", e)
		}
	}
	for i, e1 := range effects {
		for _, e2 := range effects[i+1:] {
			if !st.Orthogonal(e1, e2) {
				t.Errorf("columns %s and %s should be orthogonal", e1, e2)
			}
		}
	}
}

func TestSignTableValidation(t *testing.T) {
	if _, err := NewSignTable(nil); err == nil {
		t.Error("no factors should error")
	}
	if _, err := NewSignTable([]Factor{MustFactor("x", "a", "b", "c")}); err == nil {
		t.Error("3-level factor should error")
	}
	var many []Factor
	for i := 0; i < 21; i++ {
		many = append(many, MustFactor(string(rune('a'+i)), "0", "1"))
	}
	if _, err := NewSignTable(many); err == nil {
		t.Error("21 factors should error")
	}
}

func TestSignTableDesignRoundTrip(t *testing.T) {
	st, _ := NewSignTable(twoFactors())
	d := st.Design()
	if d.Kind != KindTwoLevel || d.NumRuns() != 4 {
		t.Errorf("design = %v runs %d", d.Kind, d.NumRuns())
	}
	for r := 0; r < 4; r++ {
		for f := 0; f < 2; f++ {
			if d.Rows[r][f] != st.LevelIndex(r, f) {
				t.Errorf("row %d factor %d mismatch", r, f)
			}
		}
	}
}

func TestSignTableString(t *testing.T) {
	st, _ := NewSignTable(twoFactors())
	s := st.String()
	for _, want := range []string{"I", "A", "B", "AB", "+1", "-1"} {
		if !containsStr(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (func() bool {
		for i := 0; i+len(needle) <= len(haystack); i++ {
			if haystack[i:i+len(needle)] == needle {
				return true
			}
		}
		return false
	})()
}

func TestDotErrors(t *testing.T) {
	st, _ := NewSignTable(twoFactors())
	if _, err := st.Dot(I, []float64{1, 2}); err == nil {
		t.Error("short y should error")
	}
}

// Property: for any k in [1,6] and any effect pair, non-identity columns
// are zero-sum and distinct effects are orthogonal.
func TestSignTableOrthogonalityQuick(t *testing.T) {
	f := func(kRaw, e1Raw, e2Raw uint8) bool {
		k := 1 + int(kRaw%6)
		var factors []Factor
		for i := 0; i < k; i++ {
			factors = append(factors, MustFactor(string(rune('A'+i)), "-", "+"))
		}
		st, err := NewSignTable(factors)
		if err != nil {
			return false
		}
		mask := (1 << uint(k)) - 1
		e1 := Effect(int(e1Raw) & mask)
		e2 := Effect(int(e2Raw) & mask)
		if e1 != I && !st.ZeroSum(e1) {
			return false
		}
		if e1 != e2 && !st.Orthogonal(e1, e2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
