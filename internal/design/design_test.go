package design

import (
	"math"
	"strings"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v", msg, got, want)
	}
}

func TestNewFactorValidation(t *testing.T) {
	if _, err := NewFactor("", "a", "b"); err == nil {
		t.Error("empty name should error")
	}
	if _, err := NewFactor("x", "a"); err == nil {
		t.Error("single level should error")
	}
	if _, err := NewFactor("x", "a", "a"); err == nil {
		t.Error("duplicate level should error")
	}
	f, err := NewFactor("cpu", "6800", "Z80", "8086")
	if err != nil {
		t.Fatal(err)
	}
	if f.TwoLevel() {
		t.Error("3-level factor reported as two-level")
	}
}

func TestCoded(t *testing.T) {
	f := MustFactor("mem", "4MB", "16MB")
	lo, err := f.Coded(0)
	if err != nil || lo != -1 {
		t.Errorf("coded(0) = %v, %v", lo, err)
	}
	hi, err := f.Coded(1)
	if err != nil || hi != 1 {
		t.Errorf("coded(1) = %v, %v", hi, err)
	}
	if _, err := f.Coded(2); err == nil {
		t.Error("coded(2) should error")
	}
	f3 := MustFactor("cpu", "a", "b", "c")
	if _, err := f3.Coded(0); err == nil {
		t.Error("coded on 3-level factor should error")
	}
}

func TestSimpleDesignSize(t *testing.T) {
	// Paper: n = 1 + sum(ni - 1).
	factors := []Factor{
		MustFactor("f1", "a", "b", "c"),      // 3 levels
		MustFactor("f2", "x", "y"),           // 2 levels
		MustFactor("f3", "p", "q", "r", "s"), // 4 levels
	}
	d, err := Simple(factors)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + (3 - 1) + (2 - 1) + (4 - 1)
	if d.NumRuns() != want {
		t.Errorf("runs = %d, want %d", d.NumRuns(), want)
	}
	// First run is the all-base configuration.
	a, err := d.Assignment(0)
	if err != nil {
		t.Fatal(err)
	}
	if a["f1"] != "a" || a["f2"] != "x" || a["f3"] != "p" {
		t.Errorf("base assignment = %v", a)
	}
	// Every non-base run differs from base in exactly one factor.
	for r := 1; r < d.NumRuns(); r++ {
		diff := 0
		for f := range factors {
			if d.Rows[r][f] != 0 {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("run %d differs from base in %d factors, want 1", r, diff)
		}
	}
}

func TestFullFactorialSize(t *testing.T) {
	factors := []Factor{
		MustFactor("f1", "a", "b", "c"),
		MustFactor("f2", "x", "y"),
	}
	d, err := FullFactorial(factors)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRuns() != 6 {
		t.Errorf("runs = %d, want 6", d.NumRuns())
	}
	// All rows distinct.
	seen := map[string]bool{}
	for r := range d.Rows {
		a, _ := d.Assignment(r)
		s := a.String()
		if seen[s] {
			t.Errorf("duplicate run %s", s)
		}
		seen[s] = true
	}
}

func TestFullFactorialTooLarge(t *testing.T) {
	var factors []Factor
	for i := 0; i < 23; i++ {
		factors = append(factors, MustFactor(string(rune('a'+i)), "0", "1"))
	}
	if _, err := FullFactorial(factors); err == nil {
		t.Error("oversized design should error")
	}
}

func TestDesignValidation(t *testing.T) {
	if _, err := Simple(nil); err == nil {
		t.Error("no factors should error")
	}
	dup := []Factor{MustFactor("x", "a", "b"), MustFactor("x", "c", "d")}
	if _, err := FullFactorial(dup); err == nil {
		t.Error("duplicate factor names should error")
	}
	three := []Factor{MustFactor("x", "a", "b", "c")}
	if _, err := TwoLevelFull(three); err == nil {
		t.Error("2^k with 3-level factor should error")
	}
}

func TestDesignStringAndAssignmentErrors(t *testing.T) {
	d, err := TwoLevelFull([]Factor{MustFactor("A", "-", "+")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.String(), "2^k") {
		t.Errorf("String() = %q", d.String())
	}
	if _, err := d.Assignment(5); err == nil {
		t.Error("out-of-range row should error")
	}
}

func TestDiagnose(t *testing.T) {
	factors := []Factor{MustFactor("A", "-", "+"), MustFactor("B", "-", "+")}
	simple, _ := Simple(factors)
	ms := Diagnose(simple, 0)
	if len(ms) != 2 {
		t.Fatalf("mistakes = %v", ms)
	}
	full, _ := FullFactorial([]Factor{
		MustFactor("A", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10"),
		MustFactor("B", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10"),
		MustFactor("C", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10"),
	})
	full.Replicates = 3
	ms = Diagnose(full, 100)
	found := false
	for _, m := range ms {
		if m == MistakeTooManyExperiments {
			found = true
		}
		if m.String() == "" {
			t.Error("empty mistake string")
		}
	}
	if !found {
		t.Errorf("expected MistakeTooManyExperiments, got %v", ms)
	}
}
