package design

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Effect identifies a main effect or interaction in a 2^k design as a bit
// mask over factor indices: bit f set means factor f participates. The zero
// mask is the identity column I (the mean).
type Effect uint32

// I is the identity effect (the mean response).
const I Effect = 0

// Order returns the interaction order: 0 for I, 1 for main effects, 2 for
// two-factor interactions, and so on.
func (e Effect) Order() int { return bits.OnesCount32(uint32(e)) }

// Mul multiplies two effects with the mod-2 algebra the paper uses for
// confounding analysis (A*A = I, so multiplication is XOR of masks).
func (e Effect) Mul(o Effect) Effect { return e ^ o }

// Contains reports whether factor index f participates in the effect.
func (e Effect) Contains(f int) bool { return e&(1<<uint(f)) != 0 }

// MainEffect returns the effect for the single factor index f.
func MainEffect(f int) Effect { return Effect(1) << uint(f) }

// EffectName renders an effect using the conventional factor letters
// A, B, C, ... (factor index 0 is A). The identity renders as "I".
func (e Effect) String() string {
	if e == I {
		return "I"
	}
	var b strings.Builder
	for f := 0; f < 32; f++ {
		if e.Contains(f) {
			b.WriteByte(byte('A' + f))
		}
	}
	return b.String()
}

// NameWith renders the effect using the supplied factor names joined by "*"
// (e.g. "memory*cache"), falling back to String when names run short.
func (e Effect) NameWith(factors []Factor) string {
	if e == I {
		return "I"
	}
	var parts []string
	for f := 0; f < 32; f++ {
		if !e.Contains(f) {
			continue
		}
		if f < len(factors) {
			parts = append(parts, factors[f].Name)
		} else {
			parts = append(parts, string(byte('A'+f)))
		}
	}
	return strings.Join(parts, "*")
}

// ParseEffect parses a letter string such as "ABC" (or "I") into an Effect.
func ParseEffect(s string) (Effect, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	if s == "" {
		return 0, fmt.Errorf("design: empty effect")
	}
	if s == "I" {
		return I, nil
	}
	var e Effect
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 'A' || c > 'Z' {
			return 0, fmt.Errorf("design: invalid effect letter %q in %q", string(c), s)
		}
		bit := MainEffect(int(c - 'A'))
		if e&bit != 0 {
			return 0, fmt.Errorf("design: repeated factor %q in effect %q", string(c), s)
		}
		e |= bit
	}
	return e, nil
}

// SignTable is the +1/-1 matrix of a two-level design: one row per run, one
// column per effect. It is the computational core of the sign-table method
// of calculating effects (paper slides 78-80).
type SignTable struct {
	Factors []Factor
	K       int      // number of factors
	Runs    int      // number of rows (2^k full, 2^(k-p) fractional)
	rows    []uint32 // per run: bit f set means factor f is at its high (+1) level
}

// NewSignTable builds the canonical full 2^k sign table for k factors
// (k <= 20), rows ordered with the LAST factor alternating fastest — the
// same order TwoLevelFull produces.
func NewSignTable(factors []Factor) (*SignTable, error) {
	if err := validateFactors(factors); err != nil {
		return nil, err
	}
	k := len(factors)
	if k > 20 {
		return nil, fmt.Errorf("design: sign table limited to 20 factors, got %d", k)
	}
	for _, f := range factors {
		if !f.TwoLevel() {
			return nil, fmt.Errorf("design: sign table requires two-level factors; %q has %d", f.Name, len(f.Levels))
		}
	}
	st := &SignTable{Factors: factors, K: k, Runs: 1 << uint(k)}
	st.rows = make([]uint32, st.Runs)
	for r := 0; r < st.Runs; r++ {
		// Row r in "last factor fastest" order: bit (k-1-j) of r gives
		// the level of factor j... Counting in binary with the last
		// factor as the least significant digit means factor f's level
		// in run r is bit (k-1-f) of r.
		var m uint32
		for f := 0; f < k; f++ {
			if r>>(uint(k-1-f))&1 == 1 {
				m |= 1 << uint(f)
			}
		}
		st.rows[r] = m
	}
	return st, nil
}

// signTableFromRows builds a sign table from explicit high-level masks
// (used by fractional designs).
func signTableFromRows(factors []Factor, rows []uint32) *SignTable {
	return &SignTable{Factors: factors, K: len(factors), Runs: len(rows), rows: rows}
}

// Sign returns the +1/-1 entry for effect e in run r: the product of the
// coded levels of the participating factors.
func (st *SignTable) Sign(r int, e Effect) float64 {
	// Factor f contributes +1 when at its high level. The product over
	// participating factors is -1 iff an odd number of them are low.
	high := st.rows[r] & uint32(e)
	lowCount := e.Order() - bits.OnesCount32(high)
	if lowCount%2 == 1 {
		return -1
	}
	return 1
}

// LevelIndex returns the level index (0 or 1) of factor f in run r.
func (st *SignTable) LevelIndex(r, f int) int {
	if st.rows[r]&(1<<uint(f)) != 0 {
		return 1
	}
	return 0
}

// Column materializes the sign column for effect e.
func (st *SignTable) Column(e Effect) []float64 {
	col := make([]float64, st.Runs)
	for r := range col {
		col[r] = st.Sign(r, e)
	}
	return col
}

// Dot returns the dot product of the effect column with y.
func (st *SignTable) Dot(e Effect, y []float64) (float64, error) {
	if len(y) != st.Runs {
		return 0, fmt.Errorf("design: %d responses for %d runs", len(y), st.Runs)
	}
	var s float64
	for r, v := range y {
		s += st.Sign(r, e) * v
	}
	return s, nil
}

// ZeroSum reports whether the column for e sums to zero — the paper's check
// that "both levels get equally tested". The identity column never does.
func (st *SignTable) ZeroSum(e Effect) bool {
	if e == I {
		return false
	}
	var s float64
	for r := 0; r < st.Runs; r++ {
		s += st.Sign(r, e)
	}
	return s == 0
}

// Orthogonal reports whether the columns of e1 and e2 are orthogonal (dot
// product zero): "any two of these factors agree as often as they disagree".
func (st *SignTable) Orthogonal(e1, e2 Effect) bool {
	var s float64
	for r := 0; r < st.Runs; r++ {
		s += st.Sign(r, e1) * st.Sign(r, e2)
	}
	return s == 0
}

// AllEffects enumerates every effect of a full 2^k table: I, all main
// effects, and all interactions, ordered by interaction order then by mask.
func (st *SignTable) AllEffects() []Effect {
	out := make([]Effect, 0, 1<<uint(st.K))
	for m := 0; m < 1<<uint(st.K); m++ {
		out = append(out, Effect(m))
	}
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i].Order(), out[j].Order()
		if oi != oj {
			return oi < oj
		}
		return out[i] < out[j]
	})
	return out
}

// Design converts the sign table into a runnable Design.
func (st *SignTable) Design() *Design {
	d := &Design{Kind: KindTwoLevel, Factors: st.Factors, Replicates: 1}
	if st.Runs < 1<<uint(st.K) {
		d.Kind = KindFractional
	}
	for r := 0; r < st.Runs; r++ {
		row := make([]int, st.K)
		for f := 0; f < st.K; f++ {
			row[f] = st.LevelIndex(r, f)
		}
		d.Rows = append(d.Rows, row)
	}
	return d
}

// String renders the sign table with I, main effects, and (for small k) all
// interaction columns, in the paper's layout.
func (st *SignTable) String() string {
	effects := []Effect{I}
	for f := 0; f < st.K; f++ {
		effects = append(effects, MainEffect(f))
	}
	if st.K <= 4 && st.Runs == 1<<uint(st.K) {
		for _, e := range st.AllEffects() {
			if e.Order() >= 2 {
				effects = append(effects, e)
			}
		}
	}
	var b strings.Builder
	b.WriteString("run")
	for _, e := range effects {
		fmt.Fprintf(&b, "\t%s", e)
	}
	b.WriteByte('\n')
	for r := 0; r < st.Runs; r++ {
		fmt.Fprintf(&b, "%d", r+1)
		for _, e := range effects {
			fmt.Fprintf(&b, "\t%+g", st.Sign(r, e))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
