package design

import (
	"fmt"
	"math"
)

// TwoByTwo is a 2x2 response table over factors A and B, in the layout of
// the paper's interaction example (slide 58):
//
//	      A1    A2
//	B1   y11   y21
//	B2   y12   y22
type TwoByTwo struct {
	A, B Factor
	// Y[i][j] is the response at B level i, A level j.
	Y [2][2]float64
}

// EffectOfAAt returns the change in response when A moves from level 1 to
// level 2, at B level i (0-based).
func (t TwoByTwo) EffectOfAAt(bLevel int) float64 {
	return t.Y[bLevel][1] - t.Y[bLevel][0]
}

// InteractionMagnitude returns how much the effect of A depends on the
// level of B: zero means no interaction.
func (t TwoByTwo) InteractionMagnitude() float64 {
	return t.EffectOfAAt(1) - t.EffectOfAAt(0)
}

// Interacts reports whether the two factors interact beyond tolerance tol:
// the paper's definition "two factors interact if the effect of one depends
// on the level of another".
func (t TwoByTwo) Interacts(tol float64) bool {
	return math.Abs(t.InteractionMagnitude()) > tol
}

// Responses returns the four responses in canonical 2^2 sign-table run
// order (A low B low; A low B high; A high B low; A high B high) for the
// table built by NewSignTable over factors [A, B] with the last factor
// alternating fastest.
func (t TwoByTwo) Responses() []float64 {
	return []float64{t.Y[0][0], t.Y[1][0], t.Y[0][1], t.Y[1][1]}
}

// Effects estimates the 2^2 factorial effects of the table.
func (t TwoByTwo) Effects() (*Effects, error) {
	st, err := NewSignTable([]Factor{t.A, t.B})
	if err != nil {
		return nil, err
	}
	return EstimateEffects(st, t.Responses())
}

// String renders the table in the paper's layout.
func (t TwoByTwo) String() string {
	return fmt.Sprintf("\t%s=%s\t%s=%s\n%s=%s\t%g\t%g\n%s=%s\t%g\t%g\n",
		t.A.Name, t.A.Levels[0], t.A.Name, t.A.Levels[1],
		t.B.Name, t.B.Levels[0], t.Y[0][0], t.Y[0][1],
		t.B.Name, t.B.Levels[1], t.Y[1][0], t.Y[1][1])
}

// CommonMistake enumerates the experiment-design mistakes the paper lists
// (slide 59); Diagnose checks a proposed design for the detectable ones.
type CommonMistake int

const (
	// MistakeIgnoredError : variation due to experimental error is
	// ignored (no replication).
	MistakeIgnoredError CommonMistake = iota
	// MistakeOneAtATime : simple one-at-a-time design where a factorial
	// design would reveal interactions at comparable cost.
	MistakeOneAtATime
	// MistakeTooManyExperiments : an enormous full factorial where a
	// fractional or two-stage approach would do.
	MistakeTooManyExperiments
)

func (m CommonMistake) String() string {
	switch m {
	case MistakeIgnoredError:
		return "variation due to experimental error is ignored (no replication)"
	case MistakeOneAtATime:
		return "one-at-a-time design cannot identify interactions"
	case MistakeTooManyExperiments:
		return "too many experiments; run a 2^k or 2^(k-p) first-cut design instead"
	default:
		return fmt.Sprintf("CommonMistake(%d)", int(m))
	}
}

// Diagnose inspects a design for the paper's detectable common mistakes.
// tooMany is the experiment budget above which a full design is flagged.
func Diagnose(d *Design, tooMany int) []CommonMistake {
	var out []CommonMistake
	if d.Replicates < 2 {
		out = append(out, MistakeIgnoredError)
	}
	if d.Kind == KindSimple && len(d.Factors) >= 2 {
		out = append(out, MistakeOneAtATime)
	}
	if tooMany > 0 && d.TotalExperiments() > tooMany && d.Kind == KindFullFactorial {
		out = append(out, MistakeTooManyExperiments)
	}
	return out
}
