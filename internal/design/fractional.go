package design

import (
	"fmt"
	"sort"
	"strings"
)

// Generator assigns one extra factor of a fractional design to an
// interaction column of the base factors, e.g. D = ABC. Target is the
// factor index being assigned; Word is the interaction of base factors it
// aliases (as an Effect mask over factor indices).
type Generator struct {
	Target int
	Word   Effect
}

// String renders the generator in the paper's "D=ABC" notation.
func (g Generator) String() string {
	return fmt.Sprintf("%s=%s", MainEffect(g.Target), g.Word)
}

// ParseGenerator parses "D=ABC" style notation.
func ParseGenerator(s string) (Generator, error) {
	parts := strings.SplitN(s, "=", 2)
	if len(parts) != 2 {
		return Generator{}, fmt.Errorf("design: generator %q must have the form D=ABC", s)
	}
	lhs, err := ParseEffect(parts[0])
	if err != nil {
		return Generator{}, fmt.Errorf("design: generator %q: %w", s, err)
	}
	if lhs.Order() != 1 {
		return Generator{}, fmt.Errorf("design: generator %q left side must be a single factor", s)
	}
	rhs, err := ParseEffect(parts[1])
	if err != nil {
		return Generator{}, fmt.Errorf("design: generator %q: %w", s, err)
	}
	if rhs.Order() < 1 {
		return Generator{}, fmt.Errorf("design: generator %q right side must name at least one factor", s)
	}
	target := 0
	for f := 0; f < 32; f++ {
		if lhs.Contains(f) {
			target = f
		}
	}
	return Generator{Target: target, Word: rhs}, nil
}

// Fractional is a 2^(k-p) fractional factorial design: a full factorial on
// the k-p base factors with the remaining p factors assigned to interaction
// columns via generators.
type Fractional struct {
	Factors    []Factor
	Base       []int       // indices of the k-p base factors
	Generators []Generator // one per extra factor
	Table      *SignTable  // 2^(k-p) rows over ALL k factors
}

// NewFractional builds a 2^(k-p) design. The first k-p factors are the base
// (as in the paper's construction: "pick k-p factors, build a full factorial
// design"); each generator must target one of the remaining factors and use
// only base factors in its word, and every extra factor needs exactly one
// generator.
func NewFractional(factors []Factor, generators []Generator) (*Fractional, error) {
	if err := validateFactors(factors); err != nil {
		return nil, err
	}
	k := len(factors)
	p := len(generators)
	if p == 0 {
		return nil, fmt.Errorf("design: fractional design needs at least one generator; use TwoLevelFull for a full design")
	}
	if p >= k {
		return nil, fmt.Errorf("design: %d generators for %d factors leaves no base", p, k)
	}
	for _, f := range factors {
		if !f.TwoLevel() {
			return nil, fmt.Errorf("design: fractional design requires two-level factors; %q has %d", f.Name, len(f.Levels))
		}
	}
	nBase := k - p
	base := make([]int, nBase)
	isBase := make(map[int]bool, nBase)
	for i := 0; i < nBase; i++ {
		base[i] = i
		isBase[i] = true
	}
	covered := make(map[int]bool, p)
	for _, g := range generators {
		if g.Target < 0 || g.Target >= k {
			return nil, fmt.Errorf("design: generator %s targets factor index %d, out of range", g, g.Target)
		}
		if isBase[g.Target] {
			return nil, fmt.Errorf("design: generator %s targets base factor %s", g, MainEffect(g.Target))
		}
		if covered[g.Target] {
			return nil, fmt.Errorf("design: factor %s has two generators", MainEffect(g.Target))
		}
		covered[g.Target] = true
		if g.Word == I {
			return nil, fmt.Errorf("design: generator %s has empty word", g)
		}
		if uint32(g.Word)>>uint(k) != 0 {
			return nil, fmt.Errorf("design: generator %s names a factor beyond the %d declared", g, k)
		}
		for f := 0; f < k; f++ {
			if g.Word.Contains(f) && !isBase[f] {
				return nil, fmt.Errorf("design: generator %s uses non-base factor %s", g, MainEffect(f))
			}
		}
	}
	for f := nBase; f < k; f++ {
		if !covered[f] {
			return nil, fmt.Errorf("design: extra factor %s has no generator", MainEffect(f))
		}
	}

	// Full factorial over the base factors, then derive the extra columns.
	baseFactors := make([]Factor, nBase)
	copy(baseFactors, factors[:nBase])
	baseST, err := NewSignTable(baseFactors)
	if err != nil {
		return nil, err
	}
	rows := make([]uint32, baseST.Runs)
	for r := 0; r < baseST.Runs; r++ {
		var m uint32
		for f := 0; f < nBase; f++ {
			if baseST.LevelIndex(r, f) == 1 {
				m |= 1 << uint(f)
			}
		}
		for _, g := range generators {
			if baseST.Sign(r, g.Word) > 0 {
				m |= 1 << uint(g.Target)
			}
		}
		rows[r] = m
	}
	return &Fractional{
		Factors:    factors,
		Base:       base,
		Generators: append([]Generator(nil), generators...),
		Table:      signTableFromRows(factors, rows),
	}, nil
}

// DefiningRelation returns the defining contrast subgroup: every product of
// the defining words I=<target*word>, including I itself. Its size is 2^p.
func (fr *Fractional) DefiningRelation() []Effect {
	words := make([]Effect, len(fr.Generators))
	for i, g := range fr.Generators {
		words[i] = MainEffect(g.Target).Mul(g.Word)
	}
	seen := map[Effect]bool{I: true}
	group := []Effect{I}
	// Generate the subgroup by closing over products of the p words.
	for mask := 1; mask < 1<<uint(len(words)); mask++ {
		var e Effect
		for i, w := range words {
			if mask>>uint(i)&1 == 1 {
				e = e.Mul(w)
			}
		}
		if !seen[e] {
			seen[e] = true
			group = append(group, e)
		}
	}
	sort.Slice(group, func(i, j int) bool {
		oi, oj := group[i].Order(), group[j].Order()
		if oi != oj {
			return oi < oj
		}
		return group[i] < group[j]
	})
	return group
}

// Resolution returns the design resolution: the smallest order of a
// non-identity word in the defining relation. Designs of higher resolution
// confound main effects only with higher-order interactions and are
// preferred ("sparsity of effects" principle, paper slide 108).
func (fr *Fractional) Resolution() int {
	res := 0
	for _, e := range fr.DefiningRelation() {
		if e == I {
			continue
		}
		if res == 0 || e.Order() < res {
			res = e.Order()
		}
	}
	return res
}

// Aliases returns the alias group of effect e: all effects whose columns are
// identical to e's in this fraction (e multiplied by each defining word).
// The result excludes e itself and is sorted by order.
func (fr *Fractional) Aliases(e Effect) []Effect {
	var out []Effect
	for _, w := range fr.DefiningRelation() {
		if w == I {
			continue
		}
		out = append(out, e.Mul(w))
	}
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i].Order(), out[j].Order()
		if oi != oj {
			return oi < oj
		}
		return out[i] < out[j]
	})
	return out
}

// ConfoundingTable renders the alias structure for the mean and all main
// effects, in the paper's "A = BCD; I = ABCD" style.
func (fr *Fractional) ConfoundingTable() string {
	var b strings.Builder
	render := func(e Effect) {
		names := []string{e.String()}
		for _, a := range fr.Aliases(e) {
			names = append(names, a.String())
		}
		b.WriteString(strings.Join(names, " = "))
		b.WriteByte('\n')
	}
	render(I)
	for f := 0; f < len(fr.Factors); f++ {
		render(MainEffect(f))
	}
	return b.String()
}

// Estimate computes the confounded effect sums from one response per run:
// what the dot product attributes to effect e is really the sum of e and
// all its aliases. Only one effect per alias group is distinct; the map key
// is the lowest-order (ties: lowest-mask) representative, so a main effect
// keys its group when present — matching the sparsity-of-effects reading
// that the estimate "is" the main effect plus hopefully-negligible
// higher-order aliases.
func (fr *Fractional) Estimate(y []float64) (map[Effect]float64, error) {
	st := fr.Table
	if len(y) != st.Runs {
		return nil, fmt.Errorf("design: %d responses for %d runs", len(y), st.Runs)
	}
	out := make(map[Effect]float64)
	seen := make(map[Effect]bool)
	better := func(a, b Effect) bool { // a preferable to b as representative
		if a.Order() != b.Order() {
			return a.Order() < b.Order()
		}
		return a < b
	}
	for m := 0; m < 1<<uint(st.K); m++ {
		e := Effect(m)
		if seen[e] {
			continue
		}
		canon := e
		for _, a := range fr.Aliases(e) {
			seen[a] = true
			if better(a, canon) {
				canon = a
			}
		}
		seen[e] = true
		d, err := st.Dot(e, y)
		if err != nil {
			return nil, err
		}
		out[canon] = d / float64(st.Runs)
	}
	return out, nil
}

// Compare reports which of two fractional designs over the same factors is
// preferable: the one with higher resolution (ties favor the first).
// It returns a human-readable justification quoting the sparsity-of-effects
// principle the paper invokes.
func Compare(a, b *Fractional) (preferred *Fractional, reason string) {
	ra, rb := a.Resolution(), b.Resolution()
	gA := make([]string, len(a.Generators))
	for i, g := range a.Generators {
		gA[i] = g.String()
	}
	gB := make([]string, len(b.Generators))
	for i, g := range b.Generators {
		gB[i] = g.String()
	}
	if rb > ra {
		return b, fmt.Sprintf("%s (resolution %d) is preferred over %s (resolution %d): higher-order interactions are assumed less important than lower-order ones (sparsity of effects), so designs that confound higher-order interactions are preferred",
			strings.Join(gB, ","), rb, strings.Join(gA, ","), ra)
	}
	return a, fmt.Sprintf("%s (resolution %d) is preferred over %s (resolution %d): higher-order interactions are assumed less important than lower-order ones (sparsity of effects), so designs that confound higher-order interactions are preferred",
		strings.Join(gA, ","), ra, strings.Join(gB, ","), rb)
}
