package design

import (
	"fmt"
	"sort"
	"strings"
)

// Effects holds the estimated coefficients of the nonlinear regression model
//
//	y = q0 + qA*xA + qB*xB + qAB*xA*xB + ...
//
// computed by the sign-table method: q_e = (column_e . y) / runs.
type Effects struct {
	Table *SignTable
	Q     map[Effect]float64
	Y     []float64
	YMean float64 // equals Q[I]
}

// EstimateEffects computes every effect of a full 2^k table from one
// response per run. For replicated responses, average them per run first
// (or use EstimateEffectsReplicated).
func EstimateEffects(st *SignTable, y []float64) (*Effects, error) {
	if len(y) != st.Runs {
		return nil, fmt.Errorf("design: %d responses for %d runs", len(y), st.Runs)
	}
	if st.Runs != 1<<uint(st.K) {
		return nil, fmt.Errorf("design: effect estimation over a fractional table estimates confounded sums; use Fractional.Estimate")
	}
	ef := &Effects{Table: st, Q: make(map[Effect]float64, st.Runs), Y: append([]float64(nil), y...)}
	for _, e := range st.AllEffects() {
		d, err := st.Dot(e, y)
		if err != nil {
			return nil, err
		}
		ef.Q[e] = d / float64(st.Runs)
	}
	ef.YMean = ef.Q[I]
	return ef, nil
}

// EstimateEffectsReplicated averages the replicate responses per run and
// estimates effects from the means; reps[r] are the replicate observations
// of run r.
func EstimateEffectsReplicated(st *SignTable, reps [][]float64) (*Effects, error) {
	if len(reps) != st.Runs {
		return nil, fmt.Errorf("design: %d replicate groups for %d runs", len(reps), st.Runs)
	}
	y := make([]float64, st.Runs)
	for r, g := range reps {
		if len(g) == 0 {
			return nil, fmt.Errorf("design: run %d has no replicates", r)
		}
		var s float64
		for _, v := range g {
			s += v
		}
		y[r] = s / float64(len(g))
	}
	return EstimateEffects(st, y)
}

// Coefficient returns q_e.
func (ef *Effects) Coefficient(e Effect) float64 { return ef.Q[e] }

// Predict evaluates the fitted model for the run whose factor high/low
// pattern is given by coded values (-1/+1 per factor).
func (ef *Effects) Predict(coded []float64) (float64, error) {
	if len(coded) != ef.Table.K {
		return 0, fmt.Errorf("design: %d coded values for %d factors", len(coded), ef.Table.K)
	}
	var y float64
	for e, q := range ef.Q {
		term := q
		for f := 0; f < ef.Table.K; f++ {
			if e.Contains(f) {
				term *= coded[f]
			}
		}
		y += term
	}
	return y, nil
}

// ModelString renders the fitted model in the paper's notation, e.g.
// "y = 40 + 20*xA + 10*xB + 5*xA*xB", omitting zero terms.
func (ef *Effects) ModelString() string {
	effects := ef.Table.AllEffects()
	var parts []string
	for _, e := range effects {
		q := ef.Q[e]
		if q == 0 && e != I {
			continue
		}
		switch {
		case e == I:
			parts = append(parts, fmt.Sprintf("%g", q))
		default:
			var vars []string
			for f := 0; f < ef.Table.K; f++ {
				if e.Contains(f) {
					vars = append(vars, "x"+string(byte('A'+f)))
				}
			}
			parts = append(parts, fmt.Sprintf("%g*%s", q, strings.Join(vars, "*")))
		}
	}
	return "y = " + strings.Join(parts, " + ")
}

// Variation is the allocation-of-variation result for one effect.
type Variation struct {
	Effect   Effect
	SS       float64 // sum of squares attributed: runs * q^2
	Fraction float64 // SS / SST, the "importance" of the effect
}

// AllocateVariation distributes the total variation SST = sum (yi - mean)^2
// among all non-identity effects: SS_e = 2^k * q_e^2 (paper slides 81-85).
// Results are sorted by descending fraction. When SST is zero (constant
// response) all fractions are zero.
func (ef *Effects) AllocateVariation() []Variation {
	var sst float64
	for _, y := range ef.Y {
		d := y - ef.YMean
		sst += d * d
	}
	var out []Variation
	for _, e := range ef.Table.AllEffects() {
		if e == I {
			continue
		}
		q := ef.Q[e]
		ss := float64(ef.Table.Runs) * q * q
		v := Variation{Effect: e, SS: ss}
		if sst > 0 {
			v.Fraction = ss / sst
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fraction != out[j].Fraction {
			return out[i].Fraction > out[j].Fraction
		}
		return out[i].Effect < out[j].Effect
	})
	return out
}

// VariationTable renders the allocation as the paper's "variation explained
// (%)" table.
func (ef *Effects) VariationTable() string {
	var b strings.Builder
	b.WriteString("effect\tvariation explained (%)\n")
	for _, v := range ef.AllocateVariation() {
		fmt.Fprintf(&b, "q%s\t%.1f\n", v.Effect, v.Fraction*100)
	}
	return b.String()
}

// ImportantEffects returns the effects whose variation fraction is at least
// threshold (e.g. 0.05), in descending order — step 2 of the paper's
// recommended two-stage methodology.
func (ef *Effects) ImportantEffects(threshold float64) []Effect {
	var out []Effect
	for _, v := range ef.AllocateVariation() {
		if v.Fraction >= threshold {
			out = append(out, v.Effect)
		}
	}
	return out
}
