package design

import (
	"strings"
	"testing"
	"testing/quick"
)

func letterFactors(k int) []Factor {
	var out []Factor
	for i := 0; i < k; i++ {
		out = append(out, MustFactor(string(rune('A'+i)), "-", "+"))
	}
	return out
}

func TestParseGenerator(t *testing.T) {
	g, err := ParseGenerator("D=ABC")
	if err != nil {
		t.Fatal(err)
	}
	if g.Target != 3 || g.Word != MainEffect(0)|MainEffect(1)|MainEffect(2) {
		t.Errorf("generator = %+v", g)
	}
	if g.String() != "D=ABC" {
		t.Errorf("String = %q", g.String())
	}
	for _, bad := range []string{"", "D", "DE=ABC", "D=", "D=A1"} {
		if _, err := ParseGenerator(bad); err == nil {
			t.Errorf("ParseGenerator(%q) should error", bad)
		}
	}
}

// TestFractional74 pins the paper's 2^(7-4) construction (slides 102-103):
// 8 runs, 7 zero-sum columns, orthogonal factor columns, extra factors
// D=AB, E=AC, F=BC, G=ABC.
func TestFractional74(t *testing.T) {
	factors := letterFactors(7)
	gens := []Generator{}
	for _, s := range []string{"D=AB", "E=AC", "F=BC", "G=ABC"} {
		g, err := ParseGenerator(s)
		if err != nil {
			t.Fatal(err)
		}
		gens = append(gens, g)
	}
	fr, err := NewFractional(factors, gens)
	if err != nil {
		t.Fatal(err)
	}
	st := fr.Table
	if st.Runs != 8 {
		t.Fatalf("runs = %d, want 8", st.Runs)
	}
	// "7 zero-sum columns: so that both levels get equally tested."
	for f := 0; f < 7; f++ {
		if !st.ZeroSum(MainEffect(f)) {
			t.Errorf("factor %s column not zero-sum", MainEffect(f))
		}
	}
	// "3 orthogonal factor columns (A, B and C)" — in fact all 7 main
	// columns are pairwise orthogonal in this construction.
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			if !st.Orthogonal(MainEffect(i), MainEffect(j)) {
				t.Errorf("columns %s,%s not orthogonal", MainEffect(i), MainEffect(j))
			}
		}
	}
	// Derived columns equal their generating interactions in every run.
	for r := 0; r < 8; r++ {
		for _, g := range gens {
			if st.Sign(r, MainEffect(g.Target)) != st.Sign(r, g.Word) {
				t.Errorf("run %d: %s != %s", r, MainEffect(g.Target), g.Word)
			}
		}
	}
	d := fr.Table.Design()
	if d.Kind != KindFractional {
		t.Errorf("design kind = %v", d.Kind)
	}
}

// TestConfoundingDABC pins the alias structure of D=ABC for 2^(4-1)
// (paper slides 104-106): AD=BC, BD=AC, AB=CD, A=BCD, B=ACD, C=ABD,
// I=ABCD.
func TestConfoundingDABC(t *testing.T) {
	factors := letterFactors(4)
	g, _ := ParseGenerator("D=ABC")
	fr, err := NewFractional(factors, []Generator{g})
	if err != nil {
		t.Fatal(err)
	}
	rel := fr.DefiningRelation()
	if len(rel) != 2 {
		t.Fatalf("defining relation size = %d, want 2", len(rel))
	}
	abcd, _ := ParseEffect("ABCD")
	if rel[1] != abcd {
		t.Errorf("defining word = %s, want ABCD", rel[1])
	}
	check := func(e1s, e2s string) {
		t.Helper()
		e1, _ := ParseEffect(e1s)
		e2, _ := ParseEffect(e2s)
		as := fr.Aliases(e1)
		if len(as) != 1 || as[0] != e2 {
			t.Errorf("alias(%s) = %v, want [%s]", e1s, as, e2s)
		}
	}
	check("AD", "BC")
	check("BD", "AC")
	check("AB", "CD")
	check("A", "BCD")
	check("B", "ACD")
	check("C", "ABD")
	check("D", "ABC")
	check("I", "ABCD")
	if fr.Resolution() != 4 {
		t.Errorf("resolution = %d, want 4 (IV)", fr.Resolution())
	}
	table := fr.ConfoundingTable()
	for _, want := range []string{"I = ABCD", "A = BCD", "D = ABC"} {
		if !strings.Contains(table, want) {
			t.Errorf("confounding table missing %q:\n%s", want, table)
		}
	}
}

// TestCompareDesigns pins the paper's conclusion (slides 107-109):
// D=ABC (resolution IV) is preferred over D=AB (resolution III).
func TestCompareDesigns(t *testing.T) {
	factors := letterFactors(4)
	gABC, _ := ParseGenerator("D=ABC")
	gAB, _ := ParseGenerator("D=AB")
	frABC, err := NewFractional(factors, []Generator{gABC})
	if err != nil {
		t.Fatal(err)
	}
	frAB, err := NewFractional(factors, []Generator{gAB})
	if err != nil {
		t.Fatal(err)
	}
	if frAB.Resolution() != 3 {
		t.Errorf("D=AB resolution = %d, want 3", frAB.Resolution())
	}
	// D=AB confounds main effects with two-factor interactions:
	// A = BD, B = AD, D = AB (slide 108).
	a, _ := ParseEffect("A")
	bd, _ := ParseEffect("BD")
	as := frAB.Aliases(a)
	if len(as) != 1 || as[0] != bd {
		t.Errorf("D=AB: alias(A) = %v, want [BD]", as)
	}
	pref, reason := Compare(frABC, frAB)
	if pref != frABC {
		t.Error("D=ABC should be preferred")
	}
	if !strings.Contains(reason, "sparsity of effects") {
		t.Errorf("reason = %q", reason)
	}
	// Order-independence.
	pref2, _ := Compare(frAB, frABC)
	if pref2 != frABC {
		t.Error("comparison should not depend on argument order")
	}
}

func TestFractionalValidation(t *testing.T) {
	factors := letterFactors(4)
	mk := func(s string) Generator {
		g, err := ParseGenerator(s)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	cases := []struct {
		name string
		gens []Generator
	}{
		{"no generators", nil},
		{"too many generators", []Generator{mk("B=A"), mk("C=A"), mk("D=A"), {Target: 4, Word: MainEffect(0)}}},
		{"targets base factor", []Generator{mk("A=BC")}},
		{"duplicate target", []Generator{mk("D=AB"), mk("D=AC")}},
		{"word uses non-base", []Generator{mk("D=AE")}},
	}
	for _, c := range cases {
		if _, err := NewFractional(factors, c.gens); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Missing generator for an extra factor: 5 factors, 1 generator
	// covering only E leaves D uncovered... with k=5, p=1, base=ABCD,
	// target must be E. Use k=6, p=2 with both generators targeting F.
	factors6 := letterFactors(6)
	if _, err := NewFractional(factors6, []Generator{mk("F=AB"), mk("F=CD")}); err == nil {
		t.Error("uncovered extra factor should error")
	}
	three := []Factor{MustFactor("A", "-", "+"), MustFactor("B", "-", "+"), MustFactor("C", "-", "+", "0")}
	if _, err := NewFractional(three, []Generator{mk("C=AB")}); err == nil {
		t.Error("3-level factor should error")
	}
}

func TestFractionalEstimateConfounded(t *testing.T) {
	// Build y from a known model with ONLY main effects; the 2^(4-1)
	// D=ABC estimate of A actually estimates A+BCD = A (BCD is zero).
	factors := letterFactors(4)
	g, _ := ParseGenerator("D=ABC")
	fr, _ := NewFractional(factors, []Generator{g})
	st := fr.Table
	truth := map[Effect]float64{I: 100, MainEffect(0): 7, MainEffect(1): -3, MainEffect(2): 2, MainEffect(3): 5}
	y := make([]float64, st.Runs)
	for r := range y {
		for e, q := range truth {
			y[r] += q * st.Sign(r, e)
		}
	}
	est, err := fr.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, est[I], 100, 1e-9, "confounded I")
	approx(t, est[MainEffect(0)], 7, 1e-9, "confounded A")
	approx(t, est[MainEffect(1)], -3, 1e-9, "confounded B")
	approx(t, est[MainEffect(2)], 2, 1e-9, "confounded C")
	approx(t, est[MainEffect(3)], 5, 1e-9, "confounded D")
	if _, err := fr.Estimate([]float64{1}); err == nil {
		t.Error("short y should error")
	}
}

func TestEstimateOnFullTableViaEffects(t *testing.T) {
	// EstimateEffects must reject fractional tables.
	factors := letterFactors(4)
	g, _ := ParseGenerator("D=ABC")
	fr, _ := NewFractional(factors, []Generator{g})
	if _, err := EstimateEffects(fr.Table, make([]float64, 8)); err == nil {
		t.Error("EstimateEffects on fractional table should error")
	}
}

// Property: for any k in [3,6] and p=1 with generator LAST=all-base, the
// fraction has 2^(k-1) runs, all main columns zero-sum, and resolution k.
func TestFractionalPropertiesQuick(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := 3 + int(kRaw%4)
		factors := letterFactors(k)
		var word Effect
		for i := 0; i < k-1; i++ {
			word |= MainEffect(i)
		}
		fr, err := NewFractional(factors, []Generator{{Target: k - 1, Word: word}})
		if err != nil {
			return false
		}
		if fr.Table.Runs != 1<<uint(k-1) {
			return false
		}
		for i := 0; i < k; i++ {
			if !fr.Table.ZeroSum(MainEffect(i)) {
				return false
			}
		}
		return fr.Resolution() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
