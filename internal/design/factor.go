// Package design implements the experiment-design chapter of the paper:
// factors and levels, simple (one-at-a-time) designs, full factorial
// designs, 2^k designs with sign-table effect estimation, allocation of
// variation, and fractional factorial 2^(k-p) designs with confounding
// (alias) algebra — following Raj Jain's "The Art of Computer Systems
// Performance Analysis", which the paper draws on.
package design

import (
	"errors"
	"fmt"
	"strings"
)

// Factor is a variable that affects the response: a parameter to be set or
// an environment variable, with a finite list of levels (possible values).
type Factor struct {
	Name   string
	Levels []string
}

// NewFactor builds a factor, validating that it has a name and at least two
// levels (a single-level "factor" cannot have an effect).
func NewFactor(name string, levels ...string) (Factor, error) {
	if name == "" {
		return Factor{}, errors.New("design: factor needs a name")
	}
	if len(levels) < 2 {
		return Factor{}, fmt.Errorf("design: factor %q needs at least 2 levels, got %d", name, len(levels))
	}
	seen := make(map[string]bool, len(levels))
	for _, l := range levels {
		if seen[l] {
			return Factor{}, fmt.Errorf("design: factor %q has duplicate level %q", name, l)
		}
		seen[l] = true
	}
	return Factor{Name: name, Levels: levels}, nil
}

// MustFactor is NewFactor that panics on error, for statically known factors
// in tests and examples.
func MustFactor(name string, levels ...string) Factor {
	f, err := NewFactor(name, levels...)
	if err != nil {
		panic(err)
	}
	return f
}

// TwoLevel reports whether the factor has exactly two levels, as the 2^k
// designs require.
func (f Factor) TwoLevel() bool { return len(f.Levels) == 2 }

// Coded returns the coded value for level index i of a two-level factor:
// -1 for the first level, +1 for the second (the paper's xA convention).
func (f Factor) Coded(i int) (float64, error) {
	if !f.TwoLevel() {
		return 0, fmt.Errorf("design: factor %q has %d levels; coded values are defined for 2", f.Name, len(f.Levels))
	}
	switch i {
	case 0:
		return -1, nil
	case 1:
		return 1, nil
	default:
		return 0, fmt.Errorf("design: level index %d out of range for factor %q", i, f.Name)
	}
}

// Assignment maps factor names to chosen level values for one experiment.
type Assignment map[string]string

// String renders the assignment deterministically in factor declaration
// order when used through Design.AssignmentString; standalone it sorts keys.
func (a Assignment) String() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	// insertion sort (tiny maps)
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + a[k]
	}
	return strings.Join(parts, " ")
}
