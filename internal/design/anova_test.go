package design

import (
	"strings"
	"testing"
	"testing/quick"
)

// replicatedPaper22 builds the paper's 2^2 responses with 3 replicates of
// symmetric noise amplitude eps around each true value.
func replicatedPaper22(eps float64) [][]float64 {
	y := []float64{15, 25, 45, 75}
	reps := make([][]float64, 4)
	for i, v := range y {
		reps[i] = []float64{v - eps, v + eps, v}
	}
	return reps
}

func TestAnalyzeReplicatedRecoversEffects(t *testing.T) {
	st, _ := paper22()
	an, err := AnalyzeReplicated(st, replicatedPaper22(1), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, an.Effects.Q[I], 40, 1e-9, "q0")
	approx(t, an.Effects.Q[MainEffect(0)], 20, 1e-9, "qA")
	approx(t, an.Effects.Q[MainEffect(1)], 10, 1e-9, "qB")
	if an.Replicates != 3 || an.ErrorDF != 4*2 {
		t.Errorf("r=%d df=%d", an.Replicates, an.ErrorDF)
	}
	// SSE = 4 runs * (1 + 1 + 0) = 8.
	approx(t, an.ErrorSS, 8, 1e-9, "SSE")
	// With tiny noise every effect dwarfs the error and is significant.
	for _, e := range []Effect{MainEffect(0), MainEffect(1), MainEffect(0).Mul(MainEffect(1))} {
		if !an.Significant(e) {
			t.Errorf("effect %s should be significant with eps=1", e)
		}
	}
	if len(an.DominatedByError()) != 0 {
		t.Errorf("no effect should be error-dominated: %v", an.DominatedByError())
	}
	out := an.String()
	for _, want := range []string{"experimental error", "confidence intervals", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeReplicatedNoiseDominates(t *testing.T) {
	// Constant true response + huge noise: everything is error.
	st, _ := paper22()
	reps := [][]float64{
		{10, 90, 50}, {20, 80, 50}, {15, 85, 50}, {25, 75, 50},
	}
	an, err := AnalyzeReplicated(st, reps, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if an.ErrorFraction < 0.9 {
		t.Errorf("error fraction = %.2f, want > 0.9", an.ErrorFraction)
	}
	for _, e := range []Effect{MainEffect(0), MainEffect(1)} {
		if an.Significant(e) {
			t.Errorf("effect %s should NOT be significant under pure noise", e)
		}
	}
	if len(an.DominatedByError()) != 3 {
		t.Errorf("all 3 effects should be error-dominated, got %v", an.DominatedByError())
	}
}

func TestAnalyzeReplicatedVariationSums(t *testing.T) {
	st, _ := paper22()
	an, err := AnalyzeReplicated(st, replicatedPaper22(2), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	total := an.ErrorFraction
	for _, v := range an.Variations {
		total += v.Fraction
	}
	approx(t, total, 1, 1e-9, "fractions including error sum to 1")
}

func TestAnalyzeReplicatedErrors(t *testing.T) {
	st, _ := paper22()
	good := replicatedPaper22(1)
	cases := []struct {
		name string
		reps [][]float64
		conf float64
	}{
		{"wrong group count", good[:3], 0.95},
		{"single replicate", [][]float64{{1}, {2}, {3}, {4}}, 0.95},
		{"ragged groups", [][]float64{{1, 2}, {1, 2}, {1, 2}, {1, 2, 3}}, 0.95},
		{"bad confidence", good, 1.5},
	}
	for _, c := range cases {
		if _, err := AnalyzeReplicated(st, c.reps, c.conf); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Fractional table rejected.
	factors := letterFactors(4)
	g, _ := ParseGenerator("D=ABC")
	fr, _ := NewFractional(factors, []Generator{g})
	reps := make([][]float64, 8)
	for i := range reps {
		reps[i] = []float64{1, 2}
	}
	if _, err := AnalyzeReplicated(fr.Table, reps, 0.95); err == nil {
		t.Error("fractional table should be rejected")
	}
}

func TestAnalyzeReplicatedZeroVariance(t *testing.T) {
	// All observations identical: no variation anywhere, nothing
	// significant, no NaNs.
	st, _ := paper22()
	reps := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	an, err := AnalyzeReplicated(st, reps, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if an.ErrorFraction != 0 {
		t.Errorf("error fraction = %g", an.ErrorFraction)
	}
	for _, v := range an.Variations {
		if v.Fraction != 0 {
			t.Errorf("fraction %g for %s", v.Fraction, v.Effect)
		}
		iv := an.EffectCI[v.Effect]
		if iv.Lo != 0 || iv.Hi != 0 {
			t.Errorf("CI for %s = %v, want degenerate zero", v.Effect, iv)
		}
	}
}

// Property: with symmetric replicate noise the estimated effects equal the
// noiseless estimates exactly, and fractions stay in [0,1].
func TestAnalyzeReplicatedQuick(t *testing.T) {
	st, _ := paper22()
	f := func(q0, qa, qb int8, epsRaw uint8) bool {
		eps := float64(epsRaw%50) + 1
		y := make([]float64, 4)
		for r := 0; r < 4; r++ {
			y[r] = float64(q0) + float64(qa)*st.Sign(r, MainEffect(0)) + float64(qb)*st.Sign(r, MainEffect(1))
		}
		reps := make([][]float64, 4)
		for r := range reps {
			reps[r] = []float64{y[r] - eps, y[r] + eps}
		}
		an, err := AnalyzeReplicated(st, reps, 0.9)
		if err != nil {
			return false
		}
		if an.Effects.Q[MainEffect(0)] != float64(qa) || an.Effects.Q[MainEffect(1)] != float64(qb) {
			return false
		}
		total := an.ErrorFraction
		for _, v := range an.Variations {
			if v.Fraction < 0 || v.Fraction > 1 {
				return false
			}
			total += v.Fraction
		}
		return total < 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
