package design

import (
	"strings"
	"testing"
	"testing/quick"
)

// paper22 builds the paper's 2^2 worked example (slides 70-72): memory size
// {4MB,16MB} x cache size {1KB,2KB}, responses in MIPS:
//
//	          mem=4MB  mem=16MB
//	cache=1KB    15       45
//	cache=2KB    25       75
func paper22() (*SignTable, []float64) {
	factors := []Factor{
		MustFactor("memory", "4MB", "16MB"), // A
		MustFactor("cache", "1KB", "2KB"),   // B
	}
	st, err := NewSignTable(factors)
	if err != nil {
		panic(err)
	}
	// Run order: (A-,B-), (A-,B+), (A+,B-), (A+,B+).
	y := []float64{15, 25, 45, 75}
	return st, y
}

// TestPaper22Effects pins the headline result of the paper's 2^2 example:
// y = 40 + 20*xA + 10*xB + 5*xA*xB.
func TestPaper22Effects(t *testing.T) {
	st, y := paper22()
	ef, err := EstimateEffects(st, y)
	if err != nil {
		t.Fatal(err)
	}
	a, b := MainEffect(0), MainEffect(1)
	approx(t, ef.Q[I], 40, 1e-12, "q0 (mean)")
	approx(t, ef.Q[a], 20, 1e-12, "qA (memory effect)")
	approx(t, ef.Q[b], 10, 1e-12, "qB (cache effect)")
	approx(t, ef.Q[a.Mul(b)], 5, 1e-12, "qAB (interaction)")
	if ef.YMean != 40 {
		t.Errorf("mean = %g", ef.YMean)
	}
	model := ef.ModelString()
	for _, frag := range []string{"40", "20*xA", "10*xB", "5*xA*xB"} {
		if !strings.Contains(model, frag) {
			t.Errorf("model %q missing %q", model, frag)
		}
	}
}

func TestPaper22Predict(t *testing.T) {
	st, y := paper22()
	ef, _ := EstimateEffects(st, y)
	// The model must reproduce all four observations exactly.
	cases := []struct {
		coded []float64
		want  float64
	}{
		{[]float64{-1, -1}, 15},
		{[]float64{-1, 1}, 25},
		{[]float64{1, -1}, 45},
		{[]float64{1, 1}, 75},
	}
	for _, c := range cases {
		got, err := ef.Predict(c.coded)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, got, c.want, 1e-9, "predict")
	}
	if _, err := ef.Predict([]float64{1}); err == nil {
		t.Error("wrong arity should error")
	}
}

// TestPaperAllocationOfVariation pins the paper's interconnection-network
// example (slides 86-93): factors network {Crossbar,Omega} and pattern
// {Random,Matrix}, three response variables T, N, R with published
// "variation explained" percentages.
func TestPaperAllocationOfVariation(t *testing.T) {
	factors := []Factor{
		MustFactor("network", "Crossbar", "Omega"), // A
		MustFactor("pattern", "Random", "Matrix"),  // B
	}
	st, err := NewSignTable(factors)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's printed data rows, used verbatim in print order. (Note:
	// taken together with the slide's own A/B row labels the printed
	// percentages would have A and B swapped; the assignment below is the
	// one consistent with both the published percentages AND the
	// conclusion "the address pattern influences most".)
	responses := map[string][]float64{
		"T": {0.6041, 0.4220, 0.7922, 0.4717},
		"N": {3, 5, 2, 4},
		"R": {1.655, 2.378, 1.262, 2.190},
	}
	want := map[string][3]float64{ // qA, qB, qAB percentages
		"T": {17.2, 77.0, 5.8},
		"N": {20, 80, 0},
		"R": {10.9, 87.8, 1.3},
	}
	a, b := MainEffect(0), MainEffect(1)
	for metric, y := range responses {
		ef, err := EstimateEffects(st, y)
		if err != nil {
			t.Fatal(err)
		}
		frac := map[Effect]float64{}
		for _, v := range ef.AllocateVariation() {
			frac[v.Effect] = v.Fraction * 100
		}
		w := want[metric]
		approx(t, frac[a], w[0], 0.1, metric+" qA%")
		approx(t, frac[b], w[1], 0.1, metric+" qB%")
		approx(t, frac[a.Mul(b)], w[2], 0.1, metric+" qAB%")
		// Paper conclusion: the address pattern (B) influences most.
		imp := ef.ImportantEffects(0.05)
		if len(imp) == 0 || imp[0] != b {
			t.Errorf("%s: most important effect = %v, want B (pattern)", metric, imp)
		}
	}
}

func TestAllocationSumsToOne(t *testing.T) {
	st, y := paper22()
	ef, _ := EstimateEffects(st, y)
	var total float64
	for _, v := range ef.AllocateVariation() {
		total += v.Fraction
	}
	approx(t, total, 1, 1e-9, "fractions sum")
	table := ef.VariationTable()
	if !strings.Contains(table, "qA") || !strings.Contains(table, "%") {
		t.Errorf("variation table = %q", table)
	}
}

func TestAllocationConstantResponse(t *testing.T) {
	st, _ := paper22()
	ef, err := EstimateEffects(st, []float64{7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ef.AllocateVariation() {
		if v.Fraction != 0 {
			t.Errorf("constant response: fraction %g for %s", v.Fraction, v.Effect)
		}
	}
}

func TestEstimateEffectsErrors(t *testing.T) {
	st, _ := paper22()
	if _, err := EstimateEffects(st, []float64{1, 2}); err == nil {
		t.Error("short y should error")
	}
	if _, err := EstimateEffectsReplicated(st, [][]float64{{1}, {2}}); err == nil {
		t.Error("short reps should error")
	}
	if _, err := EstimateEffectsReplicated(st, [][]float64{{1}, {2}, {}, {4}}); err == nil {
		t.Error("empty replicate group should error")
	}
}

func TestEstimateEffectsReplicated(t *testing.T) {
	st, y := paper22()
	reps := make([][]float64, 4)
	for r := range reps {
		// Symmetric noise around the true value averages out exactly.
		reps[r] = []float64{y[r] - 1, y[r] + 1, y[r]}
	}
	ef, err := EstimateEffectsReplicated(st, reps)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ef.Q[I], 40, 1e-9, "replicated q0")
	approx(t, ef.Q[MainEffect(0)], 20, 1e-9, "replicated qA")
}

// Property: effect estimation inverts prediction — for any small integer
// coefficients, generating y from the model and re-estimating recovers them.
func TestEffectsRoundTripQuick(t *testing.T) {
	st, _ := paper22()
	f := func(q0, qa, qb, qab int8) bool {
		y := make([]float64, 4)
		a, b := MainEffect(0), MainEffect(1)
		for r := 0; r < 4; r++ {
			y[r] = float64(q0) + float64(qa)*st.Sign(r, a) +
				float64(qb)*st.Sign(r, b) + float64(qab)*st.Sign(r, a.Mul(b))
		}
		ef, err := EstimateEffects(st, y)
		if err != nil {
			return false
		}
		return ef.Q[I] == float64(q0) && ef.Q[a] == float64(qa) &&
			ef.Q[b] == float64(qb) && ef.Q[a.Mul(b)] == float64(qab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInteractionExample pins the paper's slide-58 tables: (a) shows no
// interaction, (b) shows interaction.
func TestInteractionExample(t *testing.T) {
	a := MustFactor("A", "A1", "A2")
	b := MustFactor("B", "B1", "B2")
	noInter := TwoByTwo{A: a, B: b, Y: [2][2]float64{{3, 5}, {6, 8}}}
	inter := TwoByTwo{A: a, B: b, Y: [2][2]float64{{3, 5}, {6, 9}}}

	if noInter.Interacts(1e-9) {
		t.Error("table (a) should show no interaction")
	}
	if !inter.Interacts(1e-9) {
		t.Error("table (b) should show interaction")
	}
	approx(t, noInter.EffectOfAAt(0), 2, 0, "effect of A at B1")
	approx(t, noInter.EffectOfAAt(1), 2, 0, "effect of A at B2")
	approx(t, inter.EffectOfAAt(1), 3, 0, "effect of A at B2 (b)")
	approx(t, inter.InteractionMagnitude(), 1, 0, "interaction magnitude")

	// Effects view: qAB must be 0 for (a), nonzero for (b).
	efA, err := noInter.Effects()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, efA.Q[MainEffect(0).Mul(MainEffect(1))], 0, 1e-12, "qAB (a)")
	efB, err := inter.Effects()
	if err != nil {
		t.Fatal(err)
	}
	if efB.Q[MainEffect(0).Mul(MainEffect(1))] == 0 {
		t.Error("qAB should be nonzero for (b)")
	}
	if inter.String() == "" {
		t.Error("empty table rendering")
	}
}

func TestTwoStageScreen(t *testing.T) {
	st, y := paper22()
	ef, _ := EstimateEffects(st, y)
	ts := TwoStage{Threshold: 0.05}
	ranks := ts.Screen(ef)
	if len(ranks) != 2 {
		t.Fatalf("ranks = %v", ranks)
	}
	// Memory (A) explains 2100*?: qA=20 -> SS=1600/2100=76%, cache qB=10
	// -> 400/2100=19%, interaction 100/2100=4.7%.
	if ranks[0].Factor.Name != "memory" {
		t.Errorf("top factor = %s, want memory", ranks[0].Factor.Name)
	}
	approx(t, ranks[0].MainOnly, 1600.0/2100, 1e-9, "memory main fraction")
	approx(t, ranks[0].Total, (1600.0+100)/2100, 1e-9, "memory total fraction")

	imp := ts.ImportantFactors(ef)
	if len(imp) != 2 {
		t.Errorf("important factors = %v", imp)
	}

	plan, err := ts.RefinePlan(ef, map[string][]string{
		"memory": {"4MB", "8MB", "16MB", "32MB"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumRuns() != 4*2 {
		t.Errorf("refined runs = %d, want 8", plan.NumRuns())
	}
}

func TestTwoStageNoImportant(t *testing.T) {
	st, _ := paper22()
	ef, _ := EstimateEffects(st, []float64{5, 5, 5, 5})
	ts := TwoStage{Threshold: 0.05}
	if _, err := ts.RefinePlan(ef, nil); err == nil {
		t.Error("constant response should yield no important factors")
	}
}
