package design

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// This file extends allocation of variation to replicated 2^k designs,
// following Jain's treatment (which the paper's design chapter is built
// on). With r replicates per run the total variation decomposes as
//
//	SST = sum_e 2^k r q_e^2  +  SSE
//
// where SSE is the variation due to experimental error. The paper's common
// mistake #1 — "variation due to experimental error is ignored: the
// variation due to a factor must be compared to that due of errors!" —
// becomes checkable: an effect whose share is below the error share (or
// whose confidence interval includes zero) must not be sold as a finding.

// ReplicatedAnalysis is the full analysis of a replicated 2^k experiment.
type ReplicatedAnalysis struct {
	Effects    *Effects
	Replicates int
	// Variations per effect, including the error share, sorted by
	// descending fraction.
	Variations []Variation
	// ErrorSS and ErrorFraction quantify experimental error.
	ErrorSS       float64
	ErrorFraction float64
	// EffectCI maps each non-identity effect to a confidence interval;
	// an interval containing zero means the effect is not statistically
	// significant at the analysis confidence.
	EffectCI   map[Effect]stats.Interval
	Confidence float64
	// ErrorDF is the degrees of freedom of the error term, 2^k (r-1).
	ErrorDF int
}

// AnalyzeReplicated performs effect estimation, allocation of variation
// with an experimental-error term, and effect confidence intervals for a
// full 2^k sign table with reps[r] holding the replicate observations of
// run r. Every run needs the same number (>= 2) of replicates.
func AnalyzeReplicated(st *SignTable, reps [][]float64, confidence float64) (*ReplicatedAnalysis, error) {
	if st.Runs != 1<<uint(st.K) {
		return nil, fmt.Errorf("design: replicated analysis needs a full 2^k table")
	}
	if len(reps) != st.Runs {
		return nil, fmt.Errorf("design: %d replicate groups for %d runs", len(reps), st.Runs)
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("design: confidence must be in (0,1), got %g", confidence)
	}
	r := len(reps[0])
	if r < 2 {
		return nil, fmt.Errorf("design: replicated analysis needs >= 2 replicates per run, got %d", r)
	}
	for i, g := range reps {
		if len(g) != r {
			return nil, fmt.Errorf("design: run %d has %d replicates, others have %d", i+1, len(g), r)
		}
	}

	ef, err := EstimateEffectsReplicated(st, reps)
	if err != nil {
		return nil, err
	}

	// SSE: within-run variation around the run means.
	var sse float64
	for run, g := range reps {
		mean := ef.Y[run]
		for _, y := range g {
			d := y - mean
			sse += d * d
		}
	}
	// SST over ALL observations (not just run means).
	var grand, n float64
	for _, g := range reps {
		for _, y := range g {
			grand += y
			n++
		}
	}
	grand /= n
	var sst float64
	for _, g := range reps {
		for _, y := range g {
			d := y - grand
			sst += d * d
		}
	}

	an := &ReplicatedAnalysis{
		Effects: ef, Replicates: r, ErrorSS: sse, Confidence: confidence,
		ErrorDF:  st.Runs * (r - 1),
		EffectCI: make(map[Effect]stats.Interval),
	}
	runsTimesReps := float64(st.Runs * r)
	for _, e := range st.AllEffects() {
		if e == I {
			continue
		}
		q := ef.Q[e]
		ss := runsTimesReps * q * q
		v := Variation{Effect: e, SS: ss}
		if sst > 0 {
			v.Fraction = ss / sst
		}
		an.Variations = append(an.Variations, v)
	}
	if sst > 0 {
		an.ErrorFraction = sse / sst
	}
	sort.Slice(an.Variations, func(i, j int) bool {
		if an.Variations[i].Fraction != an.Variations[j].Fraction {
			return an.Variations[i].Fraction > an.Variations[j].Fraction
		}
		return an.Variations[i].Effect < an.Variations[j].Effect
	})

	// Effect standard deviation per Jain: se^2 = SSE / (2^k (r-1)),
	// s_q = se / sqrt(2^k r); CI = q +/- t(1-alpha/2, df) * s_q.
	seSq := sse / float64(an.ErrorDF)
	sq := 0.0
	if seSq > 0 {
		sq = math.Sqrt(seSq / runsTimesReps)
	}
	tcrit := stats.TQuantile(1-(1-confidence)/2, float64(an.ErrorDF))
	for _, e := range st.AllEffects() {
		if e == I {
			continue
		}
		q := ef.Q[e]
		an.EffectCI[e] = stats.Interval{
			Mean: q, Lo: q - tcrit*sq, Hi: q + tcrit*sq,
			Confidence: confidence, N: st.Runs * r,
		}
	}
	return an, nil
}

// Significant reports whether the effect's confidence interval excludes
// zero.
func (an *ReplicatedAnalysis) Significant(e Effect) bool {
	iv, ok := an.EffectCI[e]
	return ok && !iv.Contains(0)
}

// DominatedByError returns the effects whose variation share is below the
// experimental-error share — exactly the comparison the paper's common
// mistake #1 demands.
func (an *ReplicatedAnalysis) DominatedByError() []Effect {
	var out []Effect
	for _, v := range an.Variations {
		if v.Fraction < an.ErrorFraction {
			out = append(out, v.Effect)
		}
	}
	return out
}

// String renders the analysis: model, variation table with the error row,
// and per-effect confidence intervals with significance marks.
func (an *ReplicatedAnalysis) String() string {
	var b strings.Builder
	factors := an.Effects.Table.Factors
	fmt.Fprintf(&b, "%s  (r=%d replicates)\n", an.Effects.ModelString(), an.Replicates)
	b.WriteString("variation explained:\n")
	for _, v := range an.Variations {
		fmt.Fprintf(&b, "  q%-16s %5.1f%%\n", v.Effect.NameWith(factors), v.Fraction*100)
	}
	fmt.Fprintf(&b, "  %-17s %5.1f%%  (experimental error)\n", "error", an.ErrorFraction*100)
	fmt.Fprintf(&b, "effect confidence intervals (%.0f%%, %d error df):\n", an.Confidence*100, an.ErrorDF)
	for _, v := range an.Variations {
		iv := an.EffectCI[v.Effect]
		mark := " "
		if an.Significant(v.Effect) {
			mark = "*"
		}
		fmt.Fprintf(&b, "  q%-16s %s %s\n", v.Effect.NameWith(factors), iv, mark)
	}
	return b.String()
}
