package design

import (
	"fmt"
	"strings"
)

// Kind identifies the classical design families the paper surveys.
type Kind int

const (
	// KindSimple varies one factor at a time around a base configuration
	// (n = 1 + sum(ni - 1) experiments). Cheap, but cannot identify
	// interactions — the paper lists relying on it as common mistake #4.
	KindSimple Kind = iota
	// KindFullFactorial tests all level combinations (n = prod ni).
	KindFullFactorial
	// KindTwoLevel is the 2^k design over two-level factors, "very
	// useful for a first-cut analysis".
	KindTwoLevel
	// KindFractional is a 2^(k-p) fractional factorial design.
	KindFractional
)

func (k Kind) String() string {
	switch k {
	case KindSimple:
		return "simple (one-at-a-time)"
	case KindFullFactorial:
		return "full factorial"
	case KindTwoLevel:
		return "2^k factorial"
	case KindFractional:
		return "2^(k-p) fractional factorial"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Design is a concrete experiment plan: for each run (row), the level index
// chosen for each factor.
type Design struct {
	Kind    Kind
	Factors []Factor
	// Rows[r][f] is the level index of factor f in run r.
	Rows [][]int
	// Replicates is how many times each run is to be repeated (>= 1).
	Replicates int
}

// NumRuns returns the number of distinct factor-level combinations.
func (d *Design) NumRuns() int { return len(d.Rows) }

// TotalExperiments returns runs x replicates.
func (d *Design) TotalExperiments() int { return len(d.Rows) * d.Replicates }

// Assignment materializes row r as factor-name -> level-value.
func (d *Design) Assignment(r int) (Assignment, error) {
	if r < 0 || r >= len(d.Rows) {
		return nil, fmt.Errorf("design: row %d out of range [0,%d)", r, len(d.Rows))
	}
	a := make(Assignment, len(d.Factors))
	for f, fac := range d.Factors {
		li := d.Rows[r][f]
		if li < 0 || li >= len(fac.Levels) {
			return nil, fmt.Errorf("design: row %d: level index %d out of range for factor %q", r, li, fac.Name)
		}
		a[fac.Name] = fac.Levels[li]
	}
	return a, nil
}

// String renders the design as the aligned run table the paper draws.
func (d *Design) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s design: %d factors, %d runs x %d replicates\n",
		d.Kind, len(d.Factors), d.NumRuns(), d.Replicates)
	// Header.
	b.WriteString("run")
	for _, f := range d.Factors {
		fmt.Fprintf(&b, "\t%s", f.Name)
	}
	b.WriteByte('\n')
	for r, row := range d.Rows {
		fmt.Fprintf(&b, "%d", r+1)
		for f, li := range row {
			fmt.Fprintf(&b, "\t%s", d.Factors[f].Levels[li])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func validateFactors(factors []Factor) error {
	if len(factors) == 0 {
		return fmt.Errorf("design: need at least one factor")
	}
	seen := make(map[string]bool, len(factors))
	for _, f := range factors {
		if f.Name == "" || len(f.Levels) < 2 {
			return fmt.Errorf("design: invalid factor %+v (use NewFactor)", f)
		}
		if seen[f.Name] {
			return fmt.Errorf("design: duplicate factor %q", f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// Simple builds a one-at-a-time design: a base run with every factor at
// level 0, then each factor varied through its remaining levels while the
// others stay at the base. Requires 1 + sum(ni - 1) runs.
func Simple(factors []Factor) (*Design, error) {
	if err := validateFactors(factors); err != nil {
		return nil, err
	}
	d := &Design{Kind: KindSimple, Factors: factors, Replicates: 1}
	base := make([]int, len(factors))
	d.Rows = append(d.Rows, append([]int(nil), base...))
	for f, fac := range factors {
		for li := 1; li < len(fac.Levels); li++ {
			row := append([]int(nil), base...)
			row[f] = li
			d.Rows = append(d.Rows, row)
		}
	}
	return d, nil
}

// FullFactorial builds the all-combinations design with prod(ni) runs,
// varying the last factor fastest.
func FullFactorial(factors []Factor) (*Design, error) {
	if err := validateFactors(factors); err != nil {
		return nil, err
	}
	total := 1
	for _, f := range factors {
		total *= len(f.Levels)
		if total > 1<<22 {
			return nil, fmt.Errorf("design: full factorial over %d factors exceeds %d runs; use a fractional design", len(factors), 1<<22)
		}
	}
	d := &Design{Kind: KindFullFactorial, Factors: factors, Replicates: 1}
	row := make([]int, len(factors))
	for i := 0; i < total; i++ {
		d.Rows = append(d.Rows, append([]int(nil), row...))
		// Increment mixed-radix counter, last factor fastest.
		for f := len(factors) - 1; f >= 0; f-- {
			row[f]++
			if row[f] < len(factors[f].Levels) {
				break
			}
			row[f] = 0
		}
	}
	return d, nil
}

// TwoLevelFull builds the 2^k design over two-level factors. Row order
// matches the canonical sign table: the last factor alternates fastest.
func TwoLevelFull(factors []Factor) (*Design, error) {
	if err := validateFactors(factors); err != nil {
		return nil, err
	}
	for _, f := range factors {
		if !f.TwoLevel() {
			return nil, fmt.Errorf("design: 2^k design requires two-level factors; %q has %d levels", f.Name, len(f.Levels))
		}
	}
	d, err := FullFactorial(factors)
	if err != nil {
		return nil, err
	}
	d.Kind = KindTwoLevel
	return d, nil
}
