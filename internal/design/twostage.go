package design

import (
	"fmt"
	"sort"
)

// TwoStage implements the paper's recommended two-stage approach:
// "First experiments help identify meaningful factors and levels; then
// conduct detailed experiments."
//
// Stage one runs a cheap 2^k (or 2^(k-p)) screening design over extreme
// levels; ScreeningReport ranks factors by the variation they explain so
// stage two can refine levels of the important ones only.
type TwoStage struct {
	// Threshold is the minimum variation fraction for a factor (including
	// its interactions) to count as important. A common choice is 0.05.
	Threshold float64
}

// FactorImportance aggregates, per factor, the variation explained by its
// main effect and by every interaction it participates in.
type FactorImportance struct {
	FactorIndex int
	Factor      Factor
	MainOnly    float64 // fraction from the main effect alone
	Total       float64 // fraction from main effect + all interactions involving it
}

// Screen ranks factors from the estimated effects of a stage-one design.
func (ts TwoStage) Screen(ef *Effects) []FactorImportance {
	vars := ef.AllocateVariation()
	k := ef.Table.K
	out := make([]FactorImportance, k)
	for f := 0; f < k; f++ {
		out[f] = FactorImportance{FactorIndex: f, Factor: ef.Table.Factors[f]}
	}
	for _, v := range vars {
		for f := 0; f < k; f++ {
			if !v.Effect.Contains(f) {
				continue
			}
			out[f].Total += v.Fraction
			if v.Effect.Order() == 1 {
				out[f].MainOnly += v.Fraction
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// ImportantFactors returns the factors whose total explained variation
// meets the threshold, in descending importance — the inputs to the
// detailed stage-two design.
func (ts TwoStage) ImportantFactors(ef *Effects) []Factor {
	var out []Factor
	for _, fi := range ts.Screen(ef) {
		if fi.Total >= ts.Threshold {
			out = append(out, fi.Factor)
		}
	}
	return out
}

// RefinePlan builds the stage-two design: a full factorial over the
// important factors with the supplied refined levels (levels[name] replaces
// the screening levels). Factors screened out keep no place in the design;
// the caller pins them at a base level.
func (ts TwoStage) RefinePlan(ef *Effects, levels map[string][]string) (*Design, error) {
	important := ts.ImportantFactors(ef)
	if len(important) == 0 {
		return nil, fmt.Errorf("design: no factor explains >= %.0f%% of variation; reconsider factors or levels", ts.Threshold*100)
	}
	refined := make([]Factor, 0, len(important))
	for _, f := range important {
		if lv, ok := levels[f.Name]; ok {
			nf, err := NewFactor(f.Name, lv...)
			if err != nil {
				return nil, fmt.Errorf("design: refined levels for %q: %w", f.Name, err)
			}
			refined = append(refined, nf)
		} else {
			refined = append(refined, f)
		}
	}
	return FullFactorial(refined)
}
