package measure

import (
	"fmt"
	"sort"
	"time"
)

// RunState says whether a measured run starts cold or hot. The paper's
// definitions (slide 32):
//
//   - Cold: "a run of the query right after a DBMS is started and no
//     (benchmark-relevant) data is preloaded into the system's main memory,
//     neither by the DBMS, nor in filesystem caches."
//   - Hot: "a run of a query such that as much (query-relevant) data is
//     available as close to the CPU as possible when the measured run
//     starts", e.g. by running the query at least once beforehand.
//
// "Be aware and document what you do / choose."
type RunState int

const (
	// Cold runs flush all cached state before every measured run.
	Cold RunState = iota
	// Hot runs warm the caches before measuring.
	Hot
)

func (s RunState) String() string {
	if s == Cold {
		return "cold"
	}
	return "hot"
}

// Pick selects the representative sample from a series of measured runs.
type Pick int

const (
	// PickLast reports the last run — the paper's own choice ("measured
	// last of three consecutive runs").
	PickLast Pick = iota
	// PickMedian reports the run with the median real time.
	PickMedian
	// PickMean reports the component-wise mean of all runs.
	PickMean
	// PickMin reports the run with the minimum real time.
	PickMin
)

func (p Pick) String() string {
	switch p {
	case PickLast:
		return "last"
	case PickMedian:
		return "median"
	case PickMean:
		return "mean"
	case PickMin:
		return "min"
	default:
		return fmt.Sprintf("Pick(%d)", int(p))
	}
}

// Target is the system under measurement. Reset prepares the desired cache
// state before a measured run: for Cold it must flush caches/buffers (the
// equivalent of the paper's "system reboot or ... flushing filesystem
// caches"); for Hot it may leave warmed state in place.
type Target interface {
	// Reset prepares the run state. Called before every measured run and
	// before every warm-up run.
	Reset(state RunState) error
	// Run performs one complete execution of the measured task.
	Run() error
}

// TargetFuncs adapts plain functions to the Target interface.
type TargetFuncs struct {
	ResetFunc func(state RunState) error
	RunFunc   func() error
}

// Reset implements Target; a nil ResetFunc is a no-op.
func (t TargetFuncs) Reset(state RunState) error {
	if t.ResetFunc == nil {
		return nil
	}
	return t.ResetFunc(state)
}

// Run implements Target.
func (t TargetFuncs) Run() error {
	if t.RunFunc == nil {
		return fmt.Errorf("measure: TargetFuncs.RunFunc is nil")
	}
	return t.RunFunc()
}

// Protocol describes how to run and summarize a measurement series.
type Protocol struct {
	Clock  Clock
	State  RunState // cold or hot runs
	Warmup int      // unmeasured runs before measuring (only meaningful when hot)
	Runs   int      // measured runs (>= 1)
	Pick   Pick     // how to choose the representative sample
	// CheckResolution probes the clock's resolution before measuring and
	// attaches a warning to the result when any measured run is shorter
	// than ResolutionMargin times the resolution — the paper warns that
	// default timer resolution "can be as low as 10 milliseconds", which
	// silently quantizes short runs.
	CheckResolution bool
}

// ResolutionMargin is the minimum run-to-resolution ratio below which a
// measurement is flagged as quantization-prone.
const ResolutionMargin = 100

// LastOfThreeHot is the paper's own protocol: "measured last of three
// consecutive runs" with the caches hot.
func LastOfThreeHot(c Clock) Protocol {
	return Protocol{Clock: c, State: Hot, Warmup: 0, Runs: 3, Pick: PickLast}
}

// ColdSingle measures one cold run (flush before it).
func ColdSingle(c Clock) Protocol {
	return Protocol{Clock: c, State: Cold, Runs: 1, Pick: PickLast}
}

// Result is a completed measurement series.
type Result struct {
	Protocol Protocol
	Samples  []Sample // every measured run, in order
	Chosen   Sample   // the representative per Protocol.Pick
	// Warnings lists methodological hazards detected during the series
	// (currently: runs too short for the clock's resolution).
	Warnings []string
}

// RealTimes returns the real-time component of every sample, for feeding
// the stats package.
func (r *Result) RealTimes() []float64 {
	out := make([]float64, len(r.Samples))
	for i, s := range r.Samples {
		out[i] = float64(s.Real) / float64(time.Millisecond)
	}
	return out
}

// Run executes the protocol against the target.
//
// For Cold state, Reset(Cold) runs before every measured run, so every run
// pays the full cold cost. For Hot state, Reset(Hot) runs once, then the
// warm-up runs execute unmeasured, then the measured runs follow
// back-to-back — matching how the paper warms a DBMS by running the query
// before the measured run.
func (p Protocol) Run(t Target) (*Result, error) {
	if p.Clock == nil {
		return nil, fmt.Errorf("measure: protocol needs a clock")
	}
	if p.Runs < 1 {
		return nil, fmt.Errorf("measure: protocol needs at least 1 run, got %d", p.Runs)
	}
	res := &Result{Protocol: p}
	sw := NewStopwatch(p.Clock)

	if p.State == Hot {
		if err := t.Reset(Hot); err != nil {
			return nil, fmt.Errorf("measure: hot reset: %w", err)
		}
		for i := 0; i < p.Warmup; i++ {
			if err := t.Run(); err != nil {
				return nil, fmt.Errorf("measure: warm-up run %d: %w", i+1, err)
			}
		}
	}
	for i := 0; i < p.Runs; i++ {
		if p.State == Cold {
			if err := t.Reset(Cold); err != nil {
				return nil, fmt.Errorf("measure: cold reset before run %d: %w", i+1, err)
			}
		}
		sw.Restart()
		if err := t.Run(); err != nil {
			return nil, fmt.Errorf("measure: run %d: %w", i+1, err)
		}
		res.Samples = append(res.Samples, sw.Sample())
	}
	res.Chosen = pickSample(p.Pick, res.Samples)
	if p.CheckResolution {
		resolution := EstimateResolution(p.Clock, 1<<12)
		if resolution > 0 {
			for i, s := range res.Samples {
				if s.Real < ResolutionMargin*resolution {
					res.Warnings = append(res.Warnings, fmt.Sprintf(
						"run %d took %v but the clock's resolution is %v; runs should span >= %dx the resolution",
						i+1, s.Real, resolution, ResolutionMargin))
				}
			}
		}
	}
	return res, nil
}

func pickSample(p Pick, samples []Sample) Sample {
	switch p {
	case PickLast:
		return samples[len(samples)-1]
	case PickMin:
		best := samples[0]
		for _, s := range samples[1:] {
			if s.Real < best.Real {
				best = s
			}
		}
		return best
	case PickMedian:
		sorted := append([]Sample(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Real < sorted[j].Real })
		return sorted[len(sorted)/2]
	case PickMean:
		var sum Sample
		for _, s := range samples {
			sum = sum.Add(s)
		}
		n := time.Duration(len(samples))
		return Sample{Real: sum.Real / n, User: sum.User / n, IO: sum.IO / n}
	default:
		return samples[len(samples)-1]
	}
}
