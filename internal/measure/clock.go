// Package measure implements the paper's "Metrics: what/how to measure"
// and "How to run" chapters: clocks and stopwatches, timer-resolution
// probing, wall/CPU/I-O time decomposition, and run protocols (cold runs,
// hot runs, warm-up, last-of-N / median-of-N selection, replication).
//
// Measurement is abstracted over a Clock so experiments can run against the
// real clock or against a deterministic simulated clock (hwsim.VirtualClock)
// — which is how this repository keeps every paper experiment repeatable.
package measure

import "time"

// Clock supplies the current time as a duration since an arbitrary fixed
// origin. Implementations: RealClock (wall time) and hwsim.VirtualClock
// (simulated time).
type Clock interface {
	Now() time.Duration
}

// SplitClock additionally decomposes elapsed time the way /usr/bin/time
// does: "user" (CPU) versus "sys" (here: time blocked on I/O). Real time is
// Now(); for a virtual clock Now() == User() + IOWait().
type SplitClock interface {
	Clock
	// User returns accumulated CPU time.
	User() time.Duration
	// IOWait returns accumulated time blocked on I/O (the "sys"/idle
	// component that makes cold real time exceed cold user time).
	IOWait() time.Duration
}

// RealClock measures wall-clock time with time.Now, anchored at its
// creation instant.
type RealClock struct {
	origin time.Time
}

// NewRealClock returns a RealClock anchored now.
func NewRealClock() *RealClock { return &RealClock{origin: time.Now()} }

// Now returns the wall-clock duration since the clock was created.
func (c *RealClock) Now() time.Duration { return time.Since(c.origin) }

// Sample is one measured run, decomposed the way the paper's tables are:
// Real is wall-clock time; User is CPU time; IO is time blocked on I/O.
// For clocks without a split, User and IO are zero and only Real is
// meaningful.
type Sample struct {
	Real time.Duration
	User time.Duration
	IO   time.Duration
}

// Add returns the component-wise sum of two samples.
func (s Sample) Add(o Sample) Sample {
	return Sample{Real: s.Real + o.Real, User: s.User + o.User, IO: s.IO + o.IO}
}

// Stopwatch measures intervals against a Clock, capturing the user/IO split
// when the clock supports it.
type Stopwatch struct {
	clock     Clock
	start     time.Duration
	startUser time.Duration
	startIO   time.Duration
}

// NewStopwatch returns a started stopwatch.
func NewStopwatch(c Clock) *Stopwatch {
	sw := &Stopwatch{clock: c}
	sw.Restart()
	return sw
}

// Restart re-anchors the stopwatch at the current clock reading.
func (sw *Stopwatch) Restart() {
	sw.start = sw.clock.Now()
	if sc, ok := sw.clock.(SplitClock); ok {
		sw.startUser = sc.User()
		sw.startIO = sc.IOWait()
	}
}

// Elapsed returns the real time since the last Restart.
func (sw *Stopwatch) Elapsed() time.Duration { return sw.clock.Now() - sw.start }

// Sample returns the full real/user/IO sample since the last Restart.
func (sw *Stopwatch) Sample() Sample {
	s := Sample{Real: sw.Elapsed()}
	if sc, ok := sw.clock.(SplitClock); ok {
		s.User = sc.User() - sw.startUser
		s.IO = sc.IOWait() - sw.startIO
	}
	return s
}

// EstimateResolution probes the clock's effective resolution: the smallest
// observable nonzero increment across up to maxProbes consecutive reads.
// The paper warns that default timer resolution "can be as low as 10
// milliseconds"; probing it tells you whether your runs are long enough to
// measure at all.
func EstimateResolution(c Clock, maxProbes int) time.Duration {
	if maxProbes <= 0 {
		maxProbes = 1 << 16
	}
	best := time.Duration(0)
	prev := c.Now()
	for i := 0; i < maxProbes; i++ {
		now := c.Now()
		if d := now - prev; d > 0 {
			if best == 0 || d < best {
				best = d
			}
			prev = now
		}
	}
	return best
}
