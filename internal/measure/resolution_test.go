package measure

import (
	"strings"
	"testing"
	"time"
)

// coarseClock ticks in 10ms quanta — the paper's "resolution can be as low
// as 10 milliseconds" scenario.
type coarseClock struct{ reads int }

func (c *coarseClock) Now() time.Duration {
	c.reads++
	return time.Duration(c.reads) * 10 * time.Millisecond
}

func TestResolutionWarningFires(t *testing.T) {
	c := &coarseClock{}
	p := Protocol{Clock: c, State: Hot, Runs: 2, Pick: PickLast, CheckResolution: true}
	// The target does nothing; each run spans exactly one clock quantum.
	res, err := p.Run(TargetFuncs{RunFunc: func() error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("10ms-quantum clock with ~10ms runs should warn")
	}
	if !strings.Contains(res.Warnings[0], "resolution") {
		t.Errorf("warning = %q", res.Warnings[0])
	}
}

func TestResolutionWarningAbsentForLongRuns(t *testing.T) {
	// A fine-grained fake clock: each run advances 10s, resolution 1ms.
	fc := &fakeClock{}
	p := Protocol{Clock: fc, State: Hot, Runs: 2, Pick: PickLast, CheckResolution: true}
	res, err := p.Run(TargetFuncs{RunFunc: func() error {
		fc.cpu += 10 * time.Second
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	// EstimateResolution on fakeClock returns 0 (frozen between
	// explicit advances), so no warnings can fire.
	if len(res.Warnings) != 0 {
		t.Errorf("warnings = %v", res.Warnings)
	}
}

func TestResolutionCheckOffByDefault(t *testing.T) {
	c := &coarseClock{}
	p := Protocol{Clock: c, State: Hot, Runs: 1, Pick: PickLast}
	res, err := p.Run(TargetFuncs{RunFunc: func() error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 0 {
		t.Errorf("unchecked protocol produced warnings: %v", res.Warnings)
	}
}
