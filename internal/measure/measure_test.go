package measure

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock with user/IO split, standing in
// for hwsim.VirtualClock (measure cannot import hwsim: hwsim imports
// measure).
type fakeClock struct {
	cpu, io time.Duration
}

func (c *fakeClock) Now() time.Duration    { return c.cpu + c.io }
func (c *fakeClock) User() time.Duration   { return c.cpu }
func (c *fakeClock) IOWait() time.Duration { return c.io }

func TestStopwatchSplit(t *testing.T) {
	c := &fakeClock{}
	sw := NewStopwatch(c)
	c.cpu += 30 * time.Millisecond
	c.io += 70 * time.Millisecond
	s := sw.Sample()
	if s.Real != 100*time.Millisecond {
		t.Errorf("real = %v", s.Real)
	}
	if s.User != 30*time.Millisecond || s.IO != 70*time.Millisecond {
		t.Errorf("split = %v user, %v io", s.User, s.IO)
	}
	sw.Restart()
	c.cpu += 5 * time.Millisecond
	if got := sw.Elapsed(); got != 5*time.Millisecond {
		t.Errorf("after restart elapsed = %v", got)
	}
}

func TestStopwatchPlainClock(t *testing.T) {
	c := NewRealClock()
	sw := NewStopwatch(c)
	s := sw.Sample()
	if s.User != 0 || s.IO != 0 {
		t.Errorf("plain clock should have zero split, got %+v", s)
	}
	if s.Real < 0 {
		t.Errorf("negative real time %v", s.Real)
	}
}

func TestSampleAdd(t *testing.T) {
	a := Sample{Real: 1, User: 2, IO: 3}
	b := Sample{Real: 10, User: 20, IO: 30}
	got := a.Add(b)
	if got != (Sample{Real: 11, User: 22, IO: 33}) {
		t.Errorf("Add = %+v", got)
	}
}

// hotColdTarget simulates a buffered table: a cold run pays I/O, a hot run
// doesn't. Mirrors the paper's T2 structure.
type hotColdTarget struct {
	clock  *fakeClock
	warm   bool
	resets []RunState
	runs   int
}

func (tg *hotColdTarget) Reset(state RunState) error {
	tg.resets = append(tg.resets, state)
	tg.warm = state == Hot
	return nil
}

func (tg *hotColdTarget) Run() error {
	tg.runs++
	tg.clock.cpu += 100 * time.Millisecond
	if !tg.warm {
		tg.clock.io += 900 * time.Millisecond
		tg.warm = true // a run warms the buffers
	}
	return nil
}

func TestProtocolCold(t *testing.T) {
	c := &fakeClock{}
	tg := &hotColdTarget{clock: c}
	res, err := ColdSingle(c).Run(tg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen.User != 100*time.Millisecond {
		t.Errorf("cold user = %v", res.Chosen.User)
	}
	if res.Chosen.Real != 1000*time.Millisecond {
		t.Errorf("cold real = %v", res.Chosen.Real)
	}
	if len(tg.resets) != 1 || tg.resets[0] != Cold {
		t.Errorf("resets = %v", tg.resets)
	}
}

func TestProtocolColdEveryRun(t *testing.T) {
	c := &fakeClock{}
	tg := &hotColdTarget{clock: c}
	p := Protocol{Clock: c, State: Cold, Runs: 3, Pick: PickLast}
	res, err := p.Run(tg)
	if err != nil {
		t.Fatal(err)
	}
	// Every run must have been reset cold: all runs pay the I/O.
	for i, s := range res.Samples {
		if s.Real != 1000*time.Millisecond {
			t.Errorf("run %d real = %v, want 1s", i, s.Real)
		}
	}
	if len(tg.resets) != 3 {
		t.Errorf("resets = %d, want 3", len(tg.resets))
	}
}

func TestProtocolHotLastOfThree(t *testing.T) {
	c := &fakeClock{}
	tg := &hotColdTarget{clock: c, warm: false}
	// Simulate the paper's protocol but with hot reset leaving buffers
	// cold initially: first run pays I/O, later runs don't. Using
	// PickLast skips the cold first run.
	p := Protocol{Clock: c, State: Hot, Runs: 3, Pick: PickLast}
	// Hot reset marks warm; to exercise warming, override: reset cold.
	tg.warm = false
	res, err := p.Run(tg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen.Real != 100*time.Millisecond {
		t.Errorf("hot last-of-3 real = %v, want 100ms", res.Chosen.Real)
	}
	if res.Chosen.User != res.Chosen.Real {
		t.Errorf("hot run should have real == user, got %+v", res.Chosen)
	}
}

func TestProtocolWarmup(t *testing.T) {
	c := &fakeClock{}
	runs := 0
	tg := TargetFuncs{
		ResetFunc: func(state RunState) error { return nil },
		RunFunc: func() error {
			runs++
			c.cpu += 10 * time.Millisecond
			return nil
		},
	}
	p := Protocol{Clock: c, State: Hot, Warmup: 2, Runs: 3, Pick: PickMean}
	res, err := p.Run(tg)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 5 {
		t.Errorf("total runs = %d, want 5 (2 warmup + 3 measured)", runs)
	}
	if len(res.Samples) != 3 {
		t.Errorf("measured samples = %d, want 3", len(res.Samples))
	}
	if res.Chosen.Real != 10*time.Millisecond {
		t.Errorf("mean = %v", res.Chosen.Real)
	}
}

func TestPicks(t *testing.T) {
	samples := []Sample{
		{Real: 30 * time.Millisecond},
		{Real: 10 * time.Millisecond},
		{Real: 20 * time.Millisecond},
	}
	if got := pickSample(PickLast, samples); got.Real != 20*time.Millisecond {
		t.Errorf("last = %v", got.Real)
	}
	if got := pickSample(PickMin, samples); got.Real != 10*time.Millisecond {
		t.Errorf("min = %v", got.Real)
	}
	if got := pickSample(PickMedian, samples); got.Real != 20*time.Millisecond {
		t.Errorf("median = %v", got.Real)
	}
	if got := pickSample(PickMean, samples); got.Real != 20*time.Millisecond {
		t.Errorf("mean = %v", got.Real)
	}
}

func TestProtocolErrors(t *testing.T) {
	c := &fakeClock{}
	ok := TargetFuncs{RunFunc: func() error { return nil }}
	if _, err := (Protocol{State: Hot, Runs: 1}).Run(ok); err == nil {
		t.Error("nil clock should error")
	}
	if _, err := (Protocol{Clock: c, Runs: 0}).Run(ok); err == nil {
		t.Error("zero runs should error")
	}
	boom := errors.New("boom")
	failRun := TargetFuncs{RunFunc: func() error { return boom }}
	if _, err := (Protocol{Clock: c, State: Hot, Runs: 1}).Run(failRun); !errors.Is(err, boom) {
		t.Errorf("run error not propagated: %v", err)
	}
	failReset := TargetFuncs{
		ResetFunc: func(RunState) error { return boom },
		RunFunc:   func() error { return nil },
	}
	if _, err := (Protocol{Clock: c, State: Cold, Runs: 1}).Run(failReset); !errors.Is(err, boom) {
		t.Errorf("reset error not propagated: %v", err)
	}
	if _, err := (Protocol{Clock: c, State: Hot, Runs: 1}).Run(TargetFuncs{}); err == nil {
		t.Error("nil RunFunc should error")
	}
	failWarm := TargetFuncs{RunFunc: func() error { return boom }}
	if _, err := (Protocol{Clock: c, State: Hot, Warmup: 1, Runs: 1}).Run(failWarm); !errors.Is(err, boom) {
		t.Errorf("warmup error not propagated: %v", err)
	}
}

func TestEstimateResolution(t *testing.T) {
	// A clock ticking 1ms per read has 1ms resolution.
	n := time.Duration(0)
	tick := clockFunc(func() time.Duration {
		n += time.Millisecond
		return n
	})
	if got := EstimateResolution(tick, 100); got != time.Millisecond {
		t.Errorf("resolution = %v, want 1ms", got)
	}
	// A frozen clock has no observable resolution.
	frozen := clockFunc(func() time.Duration { return 42 })
	if got := EstimateResolution(frozen, 100); got != 0 {
		t.Errorf("frozen resolution = %v, want 0", got)
	}
	// maxProbes <= 0 uses the default and still terminates.
	if got := EstimateResolution(frozen, 0); got != 0 {
		t.Errorf("default probes resolution = %v", got)
	}
}

type clockFunc func() time.Duration

func (f clockFunc) Now() time.Duration { return f() }

func TestStringers(t *testing.T) {
	if Cold.String() != "cold" || Hot.String() != "hot" {
		t.Error("RunState strings")
	}
	for p, want := range map[Pick]string{PickLast: "last", PickMedian: "median", PickMean: "mean", PickMin: "min"} {
		if p.String() != want {
			t.Errorf("%v string = %q", int(p), p.String())
		}
	}
	if Pick(9).String() == "" {
		t.Error("unknown pick should render")
	}
}

func TestResultRealTimes(t *testing.T) {
	r := &Result{Samples: []Sample{{Real: 1500 * time.Microsecond}, {Real: 2 * time.Millisecond}}}
	ts := r.RealTimes()
	if len(ts) != 2 || ts[0] != 1.5 || ts[1] != 2 {
		t.Errorf("RealTimes = %v", ts)
	}
}
