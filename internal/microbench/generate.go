// Package microbench implements the paper's micro-benchmark chapter: a
// "specialized, stand-alone piece of software isolating one particular
// piece of a larger system", with exactly the knobs the paper credits
// micro-benchmarks for — controllable data size, value ranges and
// distributions, correlation, and predicate selectivity — plus a sweep
// harness that measures one vdb operator across a parameter range.
package microbench

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/vdb"
)

// rng is the repository's splitmix64 PRNG.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Distribution generates deterministic value streams.
type Distribution interface {
	// Name identifies the distribution in reports.
	Name() string
	// Gen produces n values with the given seed.
	Gen(n int, seed uint64) []float64
}

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Name implements Distribution.
func (u Uniform) Name() string { return fmt.Sprintf("uniform[%g,%g)", u.Lo, u.Hi) }

// Gen implements Distribution.
func (u Uniform) Gen(n int, seed uint64) []float64 {
	r := &rng{state: seed}
	out := make([]float64, n)
	for i := range out {
		out[i] = u.Lo + r.float()*(u.Hi-u.Lo)
	}
	return out
}

// Normal draws from N(Mean, StdDev^2) via Box-Muller.
type Normal struct{ Mean, StdDev float64 }

// Name implements Distribution.
func (d Normal) Name() string { return fmt.Sprintf("normal(%g,%g)", d.Mean, d.StdDev) }

// Gen implements Distribution.
func (d Normal) Gen(n int, seed uint64) []float64 {
	r := &rng{state: seed}
	out := make([]float64, n)
	for i := 0; i < n; i += 2 {
		u1, u2 := r.float(), r.float()
		if u1 < 1e-300 {
			u1 = 1e-300
		}
		mag := math.Sqrt(-2 * math.Log(u1))
		out[i] = d.Mean + d.StdDev*mag*math.Cos(2*math.Pi*u2)
		if i+1 < n {
			out[i+1] = d.Mean + d.StdDev*mag*math.Sin(2*math.Pi*u2)
		}
	}
	return out
}

// Zipf draws ranks 1..N with P(k) proportional to 1/k^S — the skewed
// distribution behind realistic value-frequency modeling. S must be
// positive; S around 1 is the classical Zipf.
type Zipf struct {
	N int
	S float64
}

// Name implements Distribution.
func (z Zipf) Name() string { return fmt.Sprintf("zipf(N=%d,s=%g)", z.N, z.S) }

// Gen implements Distribution: inverse-CDF sampling over the precomputed
// cumulative weights.
func (z Zipf) Gen(n int, seed uint64) []float64 {
	if z.N < 1 {
		return nil
	}
	cdf := make([]float64, z.N)
	var total float64
	for k := 1; k <= z.N; k++ {
		total += 1 / math.Pow(float64(k), z.S)
		cdf[k-1] = total
	}
	r := &rng{state: seed}
	out := make([]float64, n)
	for i := range out {
		target := r.float() * total
		idx := sort.SearchFloat64s(cdf, target)
		if idx >= z.N {
			idx = z.N - 1
		}
		out[i] = float64(idx + 1)
	}
	return out
}

// Correlated derives a second column y = Slope*x + noise, with the noise
// amplitude controlling the correlation strength (Noise 0: perfectly
// correlated; large Noise: nearly independent).
type Correlated struct {
	Slope float64
	Noise float64 // standard deviation of added normal noise
}

// Gen derives the correlated column from base values.
func (c Correlated) Gen(base []float64, seed uint64) []float64 {
	noise := Normal{Mean: 0, StdDev: c.Noise}.Gen(len(base), seed)
	out := make([]float64, len(base))
	for i, x := range base {
		out[i] = c.Slope*x + noise[i]
	}
	return out
}

// Pearson computes the sample correlation coefficient of two equal-length
// columns (NaN for degenerate input).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	n := float64(len(x))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// TableSpec declares a synthetic micro-benchmark table.
type TableSpec struct {
	Name string
	Rows int
	Cols []ColSpec
}

// ColSpec declares one column: either a Distribution or a correlation with
// a previously declared column.
type ColSpec struct {
	Name string
	Dist Distribution
	// CorrelateWith derives the column from another column of this table
	// via Corr (Dist must be nil).
	CorrelateWith string
	Corr          Correlated
}

// Build materializes the table deterministically from the seed.
func (ts TableSpec) Build(seed uint64) (*vdb.Table, error) {
	if ts.Rows <= 0 {
		return nil, fmt.Errorf("microbench: table %q needs rows > 0", ts.Name)
	}
	if len(ts.Cols) == 0 {
		return nil, fmt.Errorf("microbench: table %q needs columns", ts.Name)
	}
	built := map[string][]float64{}
	var cols []*vdb.Column
	for i, cs := range ts.Cols {
		var vals []float64
		switch {
		case cs.Dist != nil:
			vals = cs.Dist.Gen(ts.Rows, seed+uint64(i)*0x9e37)
		case cs.CorrelateWith != "":
			base, ok := built[cs.CorrelateWith]
			if !ok {
				return nil, fmt.Errorf("microbench: column %q correlates with unknown column %q", cs.Name, cs.CorrelateWith)
			}
			vals = cs.Corr.Gen(base, seed+uint64(i)*0x85eb)
		default:
			return nil, fmt.Errorf("microbench: column %q needs a distribution or a correlation", cs.Name)
		}
		built[cs.Name] = vals
		cols = append(cols, vdb.NewFloatColumn(cs.Name, vals))
	}
	return vdb.NewTable(ts.Name, cols...)
}

// SelectivityThreshold returns the predicate constant c such that
// "col < c" selects approximately the given fraction of rows (exact up to
// ties), using the empirical quantile of the column.
func SelectivityThreshold(vals []float64, selectivity float64) (float64, error) {
	if len(vals) == 0 {
		return 0, fmt.Errorf("microbench: empty column")
	}
	if selectivity < 0 || selectivity > 1 {
		return 0, fmt.Errorf("microbench: selectivity %g outside [0,1]", selectivity)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	idx := int(selectivity * float64(len(sorted)))
	if idx >= len(sorted) {
		return sorted[len(sorted)-1] + 1, nil
	}
	return sorted[idx], nil
}
