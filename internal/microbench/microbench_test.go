package microbench

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/plot"
	"repro/internal/vdb"
)

func TestUniform(t *testing.T) {
	u := Uniform{Lo: 10, Hi: 20}
	vals := u.Gen(10000, 7)
	var sum float64
	for _, v := range vals {
		if v < 10 || v >= 20 {
			t.Fatalf("value %g outside [10,20)", v)
		}
		sum += v
	}
	mean := sum / float64(len(vals))
	if mean < 14.8 || mean > 15.2 {
		t.Errorf("uniform mean = %g, want ~15", mean)
	}
	if u.Name() == "" {
		t.Error("empty name")
	}
}

func TestNormal(t *testing.T) {
	d := Normal{Mean: 100, StdDev: 5}
	vals := d.Gen(20001, 3) // odd n exercises the tail element
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	if mean < 99.8 || mean > 100.2 {
		t.Errorf("normal mean = %g", mean)
	}
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(len(vals)-1))
	if sd < 4.8 || sd > 5.2 {
		t.Errorf("normal sd = %g, want ~5", sd)
	}
}

func TestZipf(t *testing.T) {
	z := Zipf{N: 100, S: 1}
	vals := z.Gen(20000, 11)
	counts := map[float64]int{}
	for _, v := range vals {
		if v < 1 || v > 100 {
			t.Fatalf("rank %g outside [1,100]", v)
		}
		counts[v]++
	}
	// Rank 1 should be roughly twice as frequent as rank 2 and far more
	// frequent than rank 50.
	if counts[1] < counts[2] {
		t.Errorf("rank 1 (%d) should beat rank 2 (%d)", counts[1], counts[2])
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.6 || ratio > 2.5 {
		t.Errorf("rank1/rank2 = %.2f, want ~2 for s=1", ratio)
	}
	if counts[1] < 10*counts[50] {
		t.Errorf("rank 1 (%d) should dwarf rank 50 (%d)", counts[1], counts[50])
	}
	if out := (Zipf{N: 0, S: 1}).Gen(5, 1); out != nil {
		t.Error("N=0 should yield nil")
	}
}

func TestCorrelated(t *testing.T) {
	base := Uniform{Lo: 0, Hi: 100}.Gen(5000, 5)
	tight := Correlated{Slope: 2, Noise: 1}.Gen(base, 6)
	loose := Correlated{Slope: 2, Noise: 500}.Gen(base, 6)
	rTight := Pearson(base, tight)
	rLoose := Pearson(base, loose)
	if rTight < 0.99 {
		t.Errorf("tight correlation = %g, want > 0.99", rTight)
	}
	if math.Abs(rLoose) > 0.5 {
		t.Errorf("loose correlation = %g, want near 0", rLoose)
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{1})) {
		t.Error("degenerate Pearson should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{1, 2})) {
		t.Error("zero-variance Pearson should be NaN")
	}
}

func TestDistributionDeterminism(t *testing.T) {
	for _, d := range []Distribution{Uniform{0, 1}, Normal{0, 1}, Zipf{N: 50, S: 1.2}} {
		a := d.Gen(100, 42)
		b := d.Gen(100, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", d.Name(), i)
			}
		}
		c := d.Gen(100, 43)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds identical", d.Name())
		}
	}
}

func TestTableSpecBuild(t *testing.T) {
	spec := TableSpec{
		Name: "micro", Rows: 1000,
		Cols: []ColSpec{
			{Name: "x", Dist: Uniform{Lo: 0, Hi: 1000}},
			{Name: "y", CorrelateWith: "x", Corr: Correlated{Slope: 1, Noise: 10}},
			{Name: "z", Dist: Zipf{N: 10, S: 1}},
		},
	}
	tab, err := spec.Build(9)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1000 || len(tab.Cols) != 3 {
		t.Fatalf("built %dx%d", tab.NumRows(), len(tab.Cols))
	}
	x, _ := tab.Column("x")
	y, _ := tab.Column("y")
	if r := Pearson(x.Floats, y.Floats); r < 0.9 {
		t.Errorf("declared correlation not realized: r = %g", r)
	}

	bad := []TableSpec{
		{Name: "r0", Rows: 0, Cols: spec.Cols},
		{Name: "nocols", Rows: 10},
		{Name: "nodist", Rows: 10, Cols: []ColSpec{{Name: "x"}}},
		{Name: "badref", Rows: 10, Cols: []ColSpec{{Name: "y", CorrelateWith: "missing"}}},
	}
	for _, b := range bad {
		if _, err := b.Build(1); err == nil {
			t.Errorf("%s: expected error", b.Name)
		}
	}
}

func TestSelectivityThreshold(t *testing.T) {
	vals := Uniform{Lo: 0, Hi: 1}.Gen(10000, 13)
	for _, sel := range []float64{0.01, 0.1, 0.5, 0.9, 1.0} {
		c, err := SelectivityThreshold(vals, sel)
		if err != nil {
			t.Fatal(err)
		}
		hit := 0
		for _, v := range vals {
			if v < c {
				hit++
			}
		}
		got := float64(hit) / float64(len(vals))
		if math.Abs(got-sel) > 0.01 {
			t.Errorf("selectivity %g realized as %g", sel, got)
		}
	}
	if _, err := SelectivityThreshold(nil, 0.5); err == nil {
		t.Error("empty column should error")
	}
	if _, err := SelectivityThreshold(vals, 1.5); err == nil {
		t.Error("out-of-range selectivity should error")
	}
}

func TestSweep(t *testing.T) {
	spec := TableSpec{
		Name: "t", Rows: 20000,
		Cols: []ColSpec{{Name: "v", Dist: Uniform{Lo: 0, Hi: 1}}},
	}
	tab, err := spec.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	sweep := &Sweep{
		Table: tab, Column: "v",
		Selectivities: []float64{0.1, 0.5, 0.9},
	}
	points, err := sweep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Row counts track selectivity.
	for i, p := range points {
		want := sweep.Selectivities[i] * 20000
		if math.Abs(float64(p.RowsOut)-want) > 300 {
			t.Errorf("selectivity %g: %d rows, want ~%.0f", p.Selectivity, p.RowsOut, want)
		}
	}
	// Simulated time grows with selectivity (more rows gathered).
	if !(points[0].User < points[2].User) {
		t.Errorf("time should grow with selectivity: %v vs %v", points[0].User, points[2].User)
	}
	// The rendered chart passes the paper's guidelines.
	chart := Chart(points, "filter sweep")
	if vs := plot.Lint(chart); len(vs) != 0 {
		t.Errorf("sweep chart violates guidelines: %v", vs)
	}
}

func TestSweepErrors(t *testing.T) {
	tab, _ := TableSpec{Name: "t", Rows: 10, Cols: []ColSpec{{Name: "v", Dist: Uniform{0, 1}}}}.Build(1)
	cases := []*Sweep{
		{Column: "v", Selectivities: []float64{0.5}},                 // no table
		{Table: tab, Column: "v"},                                    // no selectivities
		{Table: tab, Column: "missing", Selectivities: []float64{1}}, // bad column
	}
	for i, s := range cases {
		if _, err := s.Run(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Non-float column rejected.
	intTab, _ := vdb.NewTable("i", vdb.NewIntColumn("k", []int64{1, 2}))
	s := &Sweep{Table: intTab, Column: "k", Selectivities: []float64{0.5}}
	if _, err := s.Run(); err == nil {
		t.Error("int column should error")
	}
}

// Property: realized selectivity of the generated threshold is within 2%
// for any uniform sample of reasonable size.
func TestSelectivityQuick(t *testing.T) {
	f := func(seed uint16, selRaw uint8) bool {
		sel := float64(selRaw) / 255
		vals := Uniform{Lo: 0, Hi: 1}.Gen(2000, uint64(seed)+1)
		c, err := SelectivityThreshold(vals, sel)
		if err != nil {
			return false
		}
		hit := 0
		for _, v := range vals {
			if v < c {
				hit++
			}
		}
		return math.Abs(float64(hit)/2000-sel) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
