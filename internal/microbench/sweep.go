package microbench

import (
	"fmt"
	"time"

	"repro/internal/hwsim"
	"repro/internal/plot"
	"repro/internal/vdb"
)

// Sweep measures one operator across a selectivity range — the canonical
// micro-benchmark of the paper's planning chapter ("allow broad parameter
// range(s); useful for detailed, in-depth analysis").
type Sweep struct {
	// Table to scan; built by TableSpec.Build.
	Table *vdb.Table
	// Column the predicate filters on.
	Column string
	// Selectivities to test, each in [0,1].
	Selectivities []float64
	// Engine to measure (default ColumnEngine).
	Engine vdb.Engine
	// Machine for simulated timing (default the paper's laptop).
	Machine *hwsim.Machine
}

// SweepPoint is one measured configuration.
type SweepPoint struct {
	Selectivity float64
	RowsOut     int
	User        time.Duration
}

// Run executes the sweep hot (data resident) and returns one point per
// selectivity.
func (s *Sweep) Run() ([]SweepPoint, error) {
	if s.Table == nil {
		return nil, fmt.Errorf("microbench: sweep needs a table")
	}
	if len(s.Selectivities) == 0 {
		return nil, fmt.Errorf("microbench: sweep needs selectivities")
	}
	col, err := s.Table.Column(s.Column)
	if err != nil {
		return nil, err
	}
	if col.Type != vdb.TFloat {
		return nil, fmt.Errorf("microbench: sweep column %q must be float", s.Column)
	}
	engine := s.Engine
	if engine == nil {
		engine = vdb.ColumnEngine{}
	}
	machine := s.Machine
	if machine == nil {
		m := hwsim.PentiumM2005
		machine = &m
	}

	var out []SweepPoint
	for _, sel := range s.Selectivities {
		threshold, err := SelectivityThreshold(col.Floats, sel)
		if err != nil {
			return nil, err
		}
		db := vdb.NewDB()
		if err := db.AddTable(s.Table); err != nil {
			return nil, err
		}
		ctx := vdb.NewSimContext(db, machine, hwsim.NewVirtualClock())
		ctx.Buffers.WarmAll([]string{s.Table.Name})
		plan := vdb.Scan(s.Table.Name).
			Filter(vdb.Lt(vdb.Col(s.Column), vdb.Float(threshold))).
			Aggregate(vdb.Count("n")).Node()
		res, err := vdb.Run(ctx, engine, plan)
		if err != nil {
			return nil, err
		}
		n, err := res.Column("n")
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Selectivity: sel,
			RowsOut:     int(n.Ints[0]),
			User:        ctx.Clock.User(),
		})
	}
	return out, nil
}

// Chart renders sweep points as a guideline-conforming line chart.
func Chart(points []SweepPoint, title string) *plot.Chart {
	pts := make([]plot.Point, len(points))
	for i, p := range points {
		pts[i] = plot.Point{X: p.Selectivity, Y: float64(p.User) / float64(time.Millisecond)}
	}
	return plot.NewLineChart(title, "selectivity (fraction of rows)", "user time (ms)",
		plot.Series{Name: "filter + count", Points: pts})
}
