// Package obs is the repository's self-measurement layer: a
// dependency-free, race-clean metrics registry with counters, gauges,
// and fixed-bucket histograms, built for hot paths.
//
// The design follows the source paper's own discipline — a system that
// evaluates performance must be able to observe itself without
// perturbing what it measures:
//
//   - Hot-path operations (Counter.Add, Gauge.Set, Histogram.Observe)
//     are single atomic instructions plus, for histograms, a short
//     linear bucket walk. No locks, no allocation, no map lookups:
//     instruments are resolved once at registration and held as
//     pointers by the instrumented code.
//   - Registration (Registry.Counter/Gauge/Histogram) is get-or-create
//     under a mutex: the same name always yields the same instrument,
//     so concurrent components share counters safely. Registering an
//     existing name as a different kind panics — that is a programming
//     error, not a runtime condition.
//   - Snapshot is a point-in-time copy readable while every hot path
//     keeps writing. A snapshot taken mid-update is internally
//     monotone per instrument but makes no cross-instrument atomicity
//     promise (a histogram's sum and count are read independently) —
//     the standard exposition contract.
//
// Two exposition encoders serve every snapshot: the Prometheus text
// format (Snapshot.WritePrometheus) and JSON (Snapshot marshals
// directly). The collector daemon's GET /v1/metrics endpoint serves
// both; docs/OBSERVABILITY.md catalogs the metric names the repository
// emits and the stability policy governing them.
//
// Default is the process-wide registry. Layers that have no natural
// configuration seam (internal/runstore) instrument into it
// unconditionally; layers that do (internal/sched, internal/collector,
// internal/collector/client) default to it but accept a private
// registry for isolation — that is how tests assert exact counts and
// how one process hosts several instrumented servers.
package obs
