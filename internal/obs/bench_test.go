package obs

import "testing"

// The hot-path budget: an Observe is a bucket walk plus three atomic
// operations, ~30ns serial and not much worse contended (the CAS sum
// loop retries only on a true collision). Counter.Inc is one atomic add.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObserveSerial(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	for i := 0; i < b.N; i++ {
		h.Observe(0.0007)
	}
}

func BenchmarkObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0007)
		}
	})
}
