package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, sorted by metric
// name. It marshals directly to the JSON exposition format; use
// WritePrometheus for the text format.
type Snapshot struct {
	// Metrics lists every registered instrument's state.
	Metrics []Metric `json:"metrics"`
}

// Metric is one instrument's state inside a Snapshot.
type Metric struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Type is "counter", "gauge", or "histogram".
	Type string `json:"type"`
	// Help is the registered help text.
	Help string `json:"help,omitempty"`
	// Value carries a counter's or gauge's current value; zero for
	// histograms.
	Value float64 `json:"value"`
	// Count is a histogram's observation count (the +Inf bucket).
	Count int64 `json:"count,omitempty"`
	// Sum is a histogram's sum of observed values.
	Sum float64 `json:"sum,omitempty"`
	// Buckets are a histogram's cumulative buckets, ascending by bound.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket: the count of observations
// at or below the LE bound.
type Bucket struct {
	// LE is the bucket's inclusive upper bound, formatted as a
	// Prometheus le label value ("0.005", "1", "+Inf").
	LE string `json:"le"`
	// Count is the cumulative observation count.
	Count int64 `json:"count"`
}

// Get returns the named metric from the snapshot — the test and
// tooling accessor.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Series counts the exposition series the snapshot renders: one per
// counter or gauge, and per histogram one per bucket plus the _sum and
// _count series — the unit the acceptance bar "N distinct series" is
// measured in.
func (s Snapshot) Series() int {
	n := 0
	for _, m := range s.Metrics {
		if m.Type == "histogram" {
			n += len(m.Buckets) + 2
		} else {
			n++
		}
	}
	return n
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// metric family, then one sample line per series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, m := range s.Metrics {
		if m.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Type)
		switch m.Type {
		case "histogram":
			for _, bk := range m.Buckets {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.Name, bk.LE, bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum %s\n", m.Name, formatValue(m.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.Name, m.Count)
		default:
			fmt.Fprintf(&b, "%s %s\n", m.Name, formatValue(m.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeHelp escapes backslashes and newlines per the text-format
// grammar.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value in the shortest exact form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLE renders a bucket bound as its le label value.
func formatLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
