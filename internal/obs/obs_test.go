package obs

import (
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events.")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	g := r.Gauge("test_depth", "Depth.")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}

	// Get-or-create: the same name yields the same instrument.
	if r.Counter("test_events_total", "Events.") != c {
		t.Error("re-registering a counter returned a different instrument")
	}
	snap := r.Snapshot()
	if m, ok := snap.Get("test_events_total"); !ok || m.Value != 42 || m.Type != "counter" {
		t.Errorf("snapshot counter = %+v, %v", m, ok)
	}
	if m, ok := snap.Get("test_depth"); !ok || m.Value != 4 || m.Type != "gauge" {
		t.Errorf("snapshot gauge = %+v, %v", m, ok)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-9 {
		t.Errorf("sum = %g, want 5.605", h.Sum())
	}
	m, ok := r.Snapshot().Get("test_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	want := []Bucket{{"0.01", 1}, {"0.1", 3}, {"1", 4}, {"+Inf", 5}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", m.Buckets, want)
	}
	for i, b := range m.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if m.Count != 5 {
		t.Errorf("snapshot count = %d, want 5 (the +Inf bucket)", m.Count)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_thing", "A counter.")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("test_thing", "Now a gauge?")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("bad name with spaces", "")
}

// promLineRE matches valid text-format lines: comments, plain samples,
// and histogram bucket samples with an le label.
var promLineRE = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [0-9eE.+-]+|[a-zA-Z_:][a-zA-Z0-9_:]* \+Inf)$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("obs_test_total", "Totals.").Add(3)
	r.Gauge("obs_test_gauge", "A gauge.").Set(-2)
	r.Histogram("obs_test_seconds", "Latency.", []float64{0.5}).Observe(0.25)

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !promLineRE.MatchString(line) {
			t.Errorf("line %d is not valid exposition format: %q", i+1, line)
		}
	}
	for _, want := range []string{
		"# TYPE obs_test_total counter",
		"obs_test_total 3",
		"obs_test_gauge -2",
		`obs_test_seconds_bucket{le="0.5"} 1`,
		`obs_test_seconds_bucket{le="+Inf"} 1`,
		"obs_test_seconds_sum 0.25",
		"obs_test_seconds_count 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("obs_json_total", "Totals.").Add(9)
	r.Histogram("obs_json_seconds", "Latency.", []float64{1}).Observe(2)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if m, ok := back.Get("obs_json_total"); !ok || m.Value != 9 {
		t.Errorf("round-tripped counter = %+v, %v", m, ok)
	}
	if m, ok := back.Get("obs_json_seconds"); !ok || m.Count != 1 {
		t.Errorf("round-tripped histogram = %+v, %v", m, ok)
	}
}

func TestSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("obs_series_a_total", "")
	r.Gauge("obs_series_b", "")
	r.Histogram("obs_series_c_seconds", "", []float64{1, 2})
	// 1 + 1 + (2 buckets + Inf + sum + count) = 7.
	if got := r.Snapshot().Series(); got != 7 {
		t.Errorf("Series() = %d, want 7", got)
	}
}

// TestRegistryConcurrentHammer is the race-detector stress: concurrent
// registration (same names from every goroutine), hot-path writes, and
// snapshots/expositions must be race-clean and lose no counts.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("hammer_total", "").Inc()
				r.Gauge("hammer_gauge", "").Add(1)
				r.Histogram("hammer_seconds", "", []float64{0.5, 1}).Observe(float64(i%3) * 0.4)
			}
		}()
	}
	// Readers snapshot and render while the writers hammer.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				var sb strings.Builder
				if err := snap.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				if _, err := json.Marshal(snap); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	const want = goroutines * iters
	snap := r.Snapshot()
	if m, _ := snap.Get("hammer_total"); m.Value != want {
		t.Errorf("counter lost updates: %v, want %d", m.Value, want)
	}
	if m, _ := snap.Get("hammer_gauge"); m.Value != want {
		t.Errorf("gauge lost updates: %v, want %d", m.Value, want)
	}
	if m, _ := snap.Get("hammer_seconds"); m.Count != want {
		t.Errorf("histogram lost observations: %d, want %d", m.Count, want)
	}
}
