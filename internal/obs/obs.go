package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric: events, records, bytes.
// Add and Inc are lock-free atomic operations safe on any hot path.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotone; callers must not pass negative n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that goes up and down: queue depth, live workers,
// in-flight bytes. Set and Add are lock-free atomic operations.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed cumulative buckets —
// the latency-distribution instrument. Observe is lock-free: one
// linear walk over the (small, fixed) bound slice, two atomic adds,
// and a CAS loop for the floating-point sum.
type Histogram struct {
	name, help string
	bounds     []float64 // sorted inclusive upper bounds; +Inf implied
	counts     []atomic.Int64
	inf        atomic.Int64
	count      atomic.Int64
	sum        atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := -1
	for i, ub := range h.bounds {
		if v <= ub {
			idx = i
			break
		}
	}
	if idx >= 0 {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond scheduler units to multi-second experiment runs.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds named instruments. Registration is get-or-create: the
// same name always returns the same instrument, so independently
// initialized components share series without coordination. A Registry
// is safe for concurrent use; the zero value is not usable — construct
// with NewRegistry or use Default.
type Registry struct {
	mu    sync.Mutex
	named map[string]any // *Counter | *Gauge | *Histogram
	order []string       // registration order, for stable iteration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{named: make(map[string]any)}
}

// defaultRegistry is the process-wide registry behind Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry — the one every
// instrumented layer writes to unless handed a private registry.
func Default() *Registry { return defaultRegistry }

// nameRE is the Prometheus metric-name grammar; registering a name
// outside it panics so an invalid series cannot reach an exposition
// endpoint.
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register is the get-or-create core; make builds the instrument on
// first registration.
func (r *Registry) register(name, kind string, make func() any) any {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.named[name]; ok {
		if kindOf(m) != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s, not a %s", name, kindOf(m), kind))
		}
		return m
	}
	m := make()
	r.named[name] = m
	r.order = append(r.order, name)
	return m
}

// kindOf names an instrument's kind for snapshots and mismatch panics.
func kindOf(m any) string {
	switch m.(type) {
	case *Counter:
		return "counter"
	case *Gauge:
		return "gauge"
	case *Histogram:
		return "histogram"
	}
	return "unknown"
}

// Counter returns (creating if absent) the named counter. Registering
// the name as any other kind panics.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, "counter", func() any {
		return &Counter{name: name, help: help}
	}).(*Counter)
}

// Gauge returns (creating if absent) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, "gauge", func() any {
		return &Gauge{name: name, help: help}
	}).(*Gauge)
}

// Histogram returns (creating if absent) the named histogram with the
// given inclusive upper bucket bounds (+Inf is implicit; nil means
// DefBuckets). Bounds must be sorted ascending; the bounds of an
// already-registered histogram win silently — buckets are a property
// of the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, "histogram", func() any {
		if bounds == nil {
			bounds = DefBuckets
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bucket bounds not strictly ascending", name))
			}
		}
		b := append([]float64(nil), bounds...)
		return &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Int64, len(b))}
	}).(*Histogram)
}

// Snapshot returns a point-in-time copy of every registered instrument,
// sorted by name. It is safe to call while every hot path keeps
// writing; see the package comment for the consistency contract.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	instruments := make([]any, len(names))
	for i, n := range names {
		instruments[i] = r.named[n]
	}
	r.mu.Unlock()

	s := Snapshot{Metrics: make([]Metric, 0, len(names))}
	for i, name := range names {
		switch m := instruments[i].(type) {
		case *Counter:
			s.Metrics = append(s.Metrics, Metric{
				Name: name, Type: "counter", Help: m.help, Value: float64(m.Value()),
			})
		case *Gauge:
			s.Metrics = append(s.Metrics, Metric{
				Name: name, Type: "gauge", Help: m.help, Value: float64(m.Value()),
			})
		case *Histogram:
			met := Metric{Name: name, Type: "histogram", Help: m.help, Sum: m.Sum()}
			cum := int64(0)
			for j, ub := range m.bounds {
				cum += m.counts[j].Load()
				met.Buckets = append(met.Buckets, Bucket{LE: formatLE(ub), Count: cum})
			}
			cum += m.inf.Load()
			met.Buckets = append(met.Buckets, Bucket{LE: "+Inf", Count: cum})
			// Count is the +Inf cumulative by construction, so the
			// exposition invariant _count == bucket{le="+Inf"} holds even
			// for a snapshot taken mid-Observe.
			met.Count = cum
			s.Metrics = append(s.Metrics, met)
		}
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}
