package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/repeat"
	"repro/internal/sysinfo"
)

func demoExperiment(t *testing.T, reps int) *harness.Experiment {
	t.Helper()
	d, err := design.TwoLevelFull([]design.Factor{
		design.MustFactor("engine", "row", "column"),
		design.MustFactor("state", "cold", "hot"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Replicates = reps
	return &harness.Experiment{
		Name: "engine x state", Design: d, Responses: []string{"ms"},
		Run: func(a design.Assignment, rep int) (map[string]float64, error) {
			v := 100.0
			if a["engine"] == "column" {
				v /= 4
			}
			if a["state"] == "cold" {
				v *= 3
			}
			return map[string]float64{"ms": v + float64(rep%2)}, nil
		},
	}
}

func fullStudy(t *testing.T) *Study {
	hw := &sysinfo.HWSpec{
		CPUVendor: "Intel", CPUModel: "Pentium M", ClockHz: 1.5e9,
		Caches:   []sysinfo.CacheSpec{{Level: "L2", SizeBytes: 2 << 20}},
		RAMBytes: 2 << 30,
		Disks:    []sysinfo.DiskSpec{{Description: "ATA", SizeBytes: 120 << 30}},
	}
	sw := &sysinfo.SWSpec{OS: "Linux", Compiler: "gcc 4.1", Flags: "-O2"}
	suite := &repeat.Suite{
		Name: "demo", Requirements: []string{"Go"}, Install: "go build",
		Experiments: []repeat.Experiment{{
			ID: "e1", Script: "run", OutputPath: "out", ExpectedDuration: time.Second,
		}},
	}
	return &Study{
		Question:   "which engine is faster, and does cache state interact?",
		Experiment: demoExperiment(t, 3),
		Hardware:   hw, Software: sw, Suite: suite,
	}
}

func TestConductSoundStudy(t *testing.T) {
	rep, err := Conduct(context.Background(), fullStudy(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound() {
		t.Errorf("full study should be sound:\n%s", rep.Text)
	}
	for _, want := range []string{"question:", "Pentium M", "variation explained", "methodology checklist", "[ok  ]"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(rep.Checklist) != 6 {
		t.Errorf("checklist items = %d", len(rep.Checklist))
	}
}

func TestConductFlagsGaps(t *testing.T) {
	s := &Study{Question: "q", Experiment: demoExperiment(t, 1)}
	rep, err := Conduct(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound() {
		t.Error("study without replication/spec/suite should not be sound")
	}
	missing := 0
	for _, item := range rep.Checklist {
		if !item.OK {
			missing++
		}
	}
	if missing != 4 { // replication, hardware, software, repeatability
		t.Errorf("missing items = %d: %+v", missing, rep.Checklist)
	}
	if !strings.Contains(rep.Text, "MISS") {
		t.Error("report should mark missing items")
	}
}

func TestConductValidation(t *testing.T) {
	if _, err := Conduct(context.Background(), nil); err == nil {
		t.Error("nil study should error")
	}
	if _, err := Conduct(context.Background(), &Study{Experiment: demoExperiment(t, 1)}); err == nil {
		t.Error("missing question should error")
	}
	if _, err := Conduct(context.Background(), &Study{Question: "q"}); err == nil {
		t.Error("missing experiment should error")
	}
}

func TestConductIncompleteSpecs(t *testing.T) {
	s := fullStudy(t)
	s.Hardware.RAMBytes = 0
	s.Software.Flags = ""
	s.Suite.Install = ""
	rep, err := Conduct(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound() {
		t.Error("incomplete specs should fail the checklist")
	}
	var notes []string
	for _, item := range rep.Checklist {
		if !item.OK {
			notes = append(notes, item.Note)
		}
	}
	joined := strings.Join(notes, " | ")
	for _, want := range []string{"memory", "flags", "install"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q: %s", want, joined)
		}
	}
}
