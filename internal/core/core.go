// Package core is the public face of the paper's primary contribution: the
// performance-evaluation methodology itself, as an executable pipeline
//
//	plan -> design -> run -> analyze -> present -> package
//
// A Study collects everything the paper says a sound evaluation needs —
// the question, the factors and design, a replicated runner, the
// environment specification, and the repeatability packaging — and Conduct
// walks the pipeline, producing a Report whose checklist records which
// methodological obligations were met.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/repeat"
	"repro/internal/sysinfo"
)

// Study is a planned performance evaluation.
type Study struct {
	// Question states what the experiment is to analyze/test/prove/show
	// — the first planning question of the paper.
	Question string
	// Experiment is the design plus runner.
	Experiment *harness.Experiment
	// Hardware and Software document the environment at the paper's
	// recommended level of detail.
	Hardware *sysinfo.HWSpec
	Software *sysinfo.SWSpec
	// Suite packages the study for repetition; optional but its absence
	// is reported.
	Suite *repeat.Suite
	// Confidence for interval reporting; default 0.95.
	Confidence float64
}

// ChecklistItem is one methodological obligation and whether it was met.
type ChecklistItem struct {
	Name string
	OK   bool
	Note string
}

// Report is the outcome of conducting a study.
type Report struct {
	Study     *Study
	Results   *harness.ResultSet
	Checklist []ChecklistItem
	Text      string
}

// Conduct validates the study, executes the experiment through the
// context's executor (harness.WithExecutor), analyzes it, and
// assembles the report. Methodological gaps (no replication, missing
// environment spec, no repeatability packaging) do not abort the study —
// they are recorded on the checklist, mirroring how the paper treats them
// as craftsmanship defects rather than hard failures.
func Conduct(ctx context.Context, s *Study) (*Report, error) {
	if s == nil || s.Experiment == nil {
		return nil, fmt.Errorf("core: study needs an experiment")
	}
	if s.Question == "" {
		return nil, fmt.Errorf("core: state what the experiment is to analyze/test/prove/show")
	}
	if s.Confidence == 0 {
		s.Confidence = 0.95
	}

	rs, err := harness.Execute(ctx, s.Experiment)
	if err != nil {
		return nil, err
	}

	rep := &Report{Study: s, Results: rs}
	check := func(name string, ok bool, note string) {
		rep.Checklist = append(rep.Checklist, ChecklistItem{Name: name, OK: ok, Note: note})
	}

	check("question stated", true, s.Question)
	mistakes := design.Diagnose(s.Experiment.Design, 0)
	check("replication (experimental error measured)", s.Experiment.Design.Replicates >= 2,
		mistakeNote(mistakes, design.MistakeIgnoredError))
	check("interactions observable (factorial design)",
		s.Experiment.Design.Kind != design.KindSimple,
		mistakeNote(mistakes, design.MistakeOneAtATime))

	if s.Hardware != nil {
		missing := s.Hardware.MissingFields()
		check("hardware specified", len(missing) == 0, strings.Join(missing, "; "))
	} else {
		check("hardware specified", false, "no hardware specification")
	}
	if s.Software != nil {
		missing := s.Software.MissingFields()
		check("software specified", len(missing) == 0, strings.Join(missing, "; "))
	} else {
		check("software specified", false, "no software specification")
	}
	if s.Suite != nil {
		err := s.Suite.Validate()
		check("repeatability packaged", err == nil, errNote(err))
	} else {
		check("repeatability packaged", false, "no repeatability suite")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "question: %s\n\n", s.Question)
	if s.Hardware != nil {
		b.WriteString(s.Hardware.Report(sysinfo.Right))
	}
	if s.Software != nil {
		b.WriteString(s.Software.Report())
	}
	b.WriteByte('\n')
	b.WriteString(rs.Report())
	b.WriteString("\nmethodology checklist:\n")
	for _, item := range rep.Checklist {
		mark := "ok  "
		if !item.OK {
			mark = "MISS"
		}
		fmt.Fprintf(&b, "  [%s] %s", mark, item.Name)
		if item.Note != "" && !item.OK {
			fmt.Fprintf(&b, " — %s", item.Note)
		}
		b.WriteByte('\n')
	}
	rep.Text = b.String()
	return rep, nil
}

// Sound reports whether every checklist item was met.
func (r *Report) Sound() bool {
	for _, item := range r.Checklist {
		if !item.OK {
			return false
		}
	}
	return true
}

func mistakeNote(ms []design.CommonMistake, want design.CommonMistake) string {
	for _, m := range ms {
		if m == want {
			return m.String()
		}
	}
	return ""
}

func errNote(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
