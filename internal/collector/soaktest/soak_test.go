// The soak: one experiment collected by a worker fleet while every
// fault the collector claims to survive is injected at once — workers
// killed mid-stream, the daemon killed and restarted mid-ingest, torn
// connections, and a 429 storm from a deliberately tiny ingest budget.
// The acceptance bar is absolute: the merged, compacted collector store
// must be byte-identical to an undisturbed single-process run.
package soaktest

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/collector/client"
	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/runstore/shardstore"
	"repro/internal/sched"
)

const (
	soakName  = "soak 2^3"
	soakToken = "soak-token"

	// soakChildEnv carries the collector URL into the doomed-worker
	// child process; its presence turns TestSoakChild into the crash
	// body (the same re-exec pattern as the e2e crash-handoff test).
	soakChildEnv  = "SOAK_CHILD_URL"
	soakChildName = "SOAK_CHILD_NAME"
	soakChildReps = "SOAK_CHILD_REPS"
	soakChildExit = 41
	soakFullEnv   = "SOAK_FULL"
)

// soakProfile scales the schedule: the default is the CI smoke (a few
// seconds), SOAK_FULL=1 — what `make soak` sets — runs the real thing.
// unitDelay paces the fleet's runner so collection stays in flight long
// enough for every restart cycle to land on live traffic; the reference
// run stays instant (the response does not depend on the pacing).
type soakProfile struct {
	reps         int // replicates per design cell (8 cells)
	kills        int // workers killed mid-stream before the fleet starts
	fleet        int // surviving workers racing for shards
	restarts     int // daemon kill/restart cycles during collection
	ttl          time.Duration
	unitDelay    time.Duration // per-unit pacing in the fleet's runner
	restartEvery time.Duration // gap between daemon kill cycles
	downFor      time.Duration // how long each kill stays dark
}

// Each dark window must outlast the fleet's longest between-dial sleep
// (the ~120ms jittered ceiling of a 429 backpressure wait): during a
// storm every worker can be parked in one of those sleeps at once, and
// a shorter window can then open and close with no dial landing in it —
// leaving the "fleet retried a transport error" assertion flaky.
func profile() soakProfile {
	if os.Getenv(soakFullEnv) != "" && !testing.Short() {
		return soakProfile{
			reps: 8, kills: 2, fleet: 4, restarts: 5, ttl: 2 * time.Second,
			unitDelay: 120 * time.Millisecond, restartEvery: 800 * time.Millisecond, downFor: 250 * time.Millisecond,
		}
	}
	return soakProfile{
		reps: 3, kills: 1, fleet: 3, restarts: 2, ttl: time.Second,
		unitDelay: 60 * time.Millisecond, restartEvery: 400 * time.Millisecond, downFor: 250 * time.Millisecond,
	}
}

// soakExperiment is a 2^3 design whose response depends only on
// (assignment, replicate): any execution order, interruption schedule,
// or replay must reproduce identical records.
func soakExperiment(t *testing.T, reps int, run harness.RunFunc) *harness.Experiment {
	t.Helper()
	d, err := design.TwoLevelFull([]design.Factor{
		design.MustFactor("memory", "4MB", "16MB"),
		design.MustFactor("cache", "1KB", "2KB"),
		design.MustFactor("threads", "1", "8"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Replicates = reps
	if run == nil {
		run = soakRunner
	}
	return &harness.Experiment{
		Name: soakName, Design: d, Responses: []string{"MIPS"}, Run: run,
	}
}

func soakRunner(a design.Assignment, rep int) (map[string]float64, error) {
	base := 0.0
	for _, f := range []struct {
		factor string
		hi     string
		weight float64
	}{
		{"memory", "16MB", 100},
		{"cache", "2KB", 10},
		{"threads", "8", 1},
	} {
		switch a[f.factor] {
		case f.hi:
			base += 2 * f.weight
		case "":
			return nil, fmt.Errorf("assignment %s missing factor %s", a, f.factor)
		default:
			base += f.weight
		}
	}
	return map[string]float64{"MIPS": base + float64(rep)*0.25}, nil
}

// referenceJournal is the ground truth: the same experiment run
// undisturbed in a single process, compacted.
func referenceJournal(t *testing.T, reps int) []byte {
	t.Helper()
	dir := t.TempDir()
	s := sched.New(sched.Options{Workers: 1, JournalDir: dir})
	if _, err := s.Execute(context.Background(), soakExperiment(t, reps, nil)); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, runstore.SanitizeName(soakName)+".jsonl")
	dst := filepath.Join(dir, "reference.compact.jsonl")
	if _, err := runstore.Compact(src, dst); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// collectedJournal merges and compacts the daemon's shard journals.
func collectedJournal(t *testing.T, srvDir string, shards int) []byte {
	t.Helper()
	merged := filepath.Join(t.TempDir(), "merged.jsonl")
	if _, err := runstore.Merge(shardstore.Paths(srvDir, soakName, shards), merged); err != nil {
		t.Fatal(err)
	}
	compacted := merged + ".compact"
	if _, err := runstore.Compact(merged, compacted); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(compacted)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSoakChild is the doomed worker: re-invoked with SOAK_CHILD_URL
// set, it streams every record immediately (FlushEvery 1) and dies
// without unwinding — no flush, no release, no lease renewal — in the
// middle of its third unit, leaving a live lease and a partial stream
// for the TTL sweep and a surviving worker to clean up.
func TestSoakChild(t *testing.T) {
	url := os.Getenv(soakChildEnv)
	if url == "" {
		t.Skip("child-process body for TestSoak")
	}
	reps, err := strconv.Atoi(os.Getenv(soakChildReps))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	run := func(a design.Assignment, rep int) (map[string]float64, error) {
		count++ // Workers: 1, so a single goroutine runs every unit
		if count == 3 {
			os.Exit(soakChildExit)
		}
		return soakRunner(a, rep)
	}
	w, err := client.NewWorker(client.Options{
		URL:     url,
		Worker:  os.Getenv(soakChildName),
		Token:   soakToken,
		Workers: 1, FlushEvery: 1,
		AcquireWait: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Execute(context.Background(), soakExperiment(t, reps, run))
	t.Fatal("child should have died mid-stream")
}

// TestSoak runs the whole gauntlet. Default profile is the CI smoke;
// `make soak` (SOAK_FULL=1) runs the long schedule. Both assert the
// same contract: every injected fault is absorbed and the collected
// result is byte-identical to the single-process reference.
func TestSoak(t *testing.T) {
	p := profile()
	const shards = 4
	want := referenceJournal(t, p.reps)

	reg := obs.NewRegistry()
	srvDir := t.TempDir()
	d, err := NewDaemon(collector.Config{
		Dir:          srvDir,
		Shards:       shards,
		LeaseTTL:     p.ttl,
		MaxInflight:  256, // a few records deep: concurrent workers storm into 429s
		RetryAfter:   100 * time.Millisecond,
		CommitWindow: 2 * time.Millisecond,
		Token:        soakToken,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	// Fault 1 — workers killed mid-stream: each child acquires a shard,
	// streams two records, and dies holding the lease. The fleet below
	// inherits the shard after the TTL and warm-starts from the stream.
	for i := 0; i < p.kills; i++ {
		cmd := exec.Command(os.Args[0], "-test.run=^TestSoakChild$")
		cmd.Env = append(os.Environ(),
			soakChildEnv+"="+d.URL(),
			soakChildName+"="+fmt.Sprintf("doomed-%d", i),
			soakChildReps+"="+strconv.Itoa(p.reps),
		)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("doomed worker %d exited cleanly, want a mid-stream crash; output:\n%s", i, out)
		}
		exitErr, ok := err.(*exec.ExitError)
		if !ok || exitErr.ExitCode() != soakChildExit {
			t.Fatalf("doomed worker %d died with %v, want exit %d; output:\n%s", i, err, soakChildExit, out)
		}
	}

	// Faults 2 and 3 — daemon kill/restart cycles and torn connections —
	// run concurrently with the fleet until it finishes.
	chaosCtx, stopChaos := context.WithCancel(context.Background())
	defer stopChaos()
	var chaos sync.WaitGroup
	var restartErr error
	restartsDone := 0
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		for i := 0; i < p.restarts; i++ {
			select {
			case <-chaosCtx.Done():
				return
			case <-time.After(p.restartEvery):
			}
			if err := d.Restart(p.downFor); err != nil {
				restartErr = err
				return
			}
			restartsDone++
		}
	}()
	torn := 0
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		torn = TornConnections(chaosCtx, d.Addr(), 20*time.Millisecond)
	}()

	// The fleet: every worker streams per-record (FlushEvery 1) and its
	// runner is paced by unitDelay, so collection stays in flight across
	// every restart cycle and the dark windows land mid-ingest.
	pacedRun := func(a design.Assignment, rep int) (map[string]float64, error) {
		time.Sleep(p.unitDelay)
		return soakRunner(a, rep)
	}
	fleetReg := obs.NewRegistry()
	errs := make([]error, p.fleet)
	var fleet sync.WaitGroup
	for i := 0; i < p.fleet; i++ {
		w, err := client.NewWorker(client.Options{
			URL:         d.URL(),
			Worker:      fmt.Sprintf("soak-%d", i),
			Token:       soakToken,
			Workers:     2,
			SpoolDir:    t.TempDir(),
			FlushEvery:  1,
			AcquireWait: 150 * time.Millisecond,
			Metrics:     fleetReg,
		})
		if err != nil {
			t.Fatal(err)
		}
		fleet.Add(1)
		go func(i int) {
			defer fleet.Done()
			_, errs[i] = w.Execute(context.Background(), soakExperiment(t, p.reps, pacedRun))
		}(i)
	}
	fleet.Wait()
	stopChaos()
	chaos.Wait()
	if restartErr != nil {
		t.Fatalf("daemon restart: %v", restartErr)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fleet worker %d: %v", i, err)
		}
	}

	// The faults must actually have fired — a soak that quietly injected
	// nothing proves nothing.
	if torn == 0 {
		t.Error("no torn connections were delivered")
	}
	if waits := fleetReg.Counter("worker_backpressure_waits_total", "").Value(); waits == 0 {
		t.Error("no 429 storm: the fleet never hit backpressure")
	}
	if fleetRetries := fleetReg.Counter("worker_transport_retries_total", "").Value(); restartsDone > 0 && fleetRetries == 0 {
		t.Errorf("%d daemon restart(s) but the fleet never retried a transport error", restartsDone)
	}
	if got := reg.Gauge("collector_epoch", "").Value(); got != int64(restartsDone+1) {
		t.Errorf("final epoch = %d, want %d (initial start + %d restart(s))", got, restartsDone+1, restartsDone)
	}
	if errors := reg.Counter("collector_state_errors_total", "").Value(); errors != 0 {
		t.Errorf("control-state journal reported %d append error(s)", errors)
	}

	// The daemon's own view: every shard completed.
	c := client.New(d.URL(), nil)
	c.SetToken(soakToken)
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	completed := false
	for _, e := range st.Experiments {
		if e.Experiment == soakName {
			completed = e.Done == shards
			if !completed {
				t.Errorf("experiment finished with %d/%d shard(s) done: %+v", e.Done, shards, e)
			}
		}
	}
	if !completed {
		t.Errorf("experiment %q missing from status: %+v", soakName, st.Experiments)
	}

	// The acceptance bar: after every injected fault, the collected
	// store is byte-identical to the undisturbed single-process run.
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	got := collectedJournal(t, srvDir, shards)
	if !bytes.Equal(got, want) {
		t.Errorf("collected store differs from the single-process reference after the soak:\ncollected (%d bytes):\n%s\nreference (%d bytes):\n%s",
			len(got), got, len(want), want)
	}
}
