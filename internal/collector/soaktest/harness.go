// Package soaktest is the collector's fault-injection harness: a
// restartable in-process daemon pinned to a stable address, plus the
// chaos injectors the soak test aims at it — daemon kill/restart cycles,
// torn connections, and (via a tiny ingest budget) 429 storms. The soak
// itself lives in this package's test files and asserts the hardening
// contract end to end: whatever the fault schedule, the merged and
// compacted collector store is byte-identical to a single-process run.
//
// Run it with `make soak` (full schedule) or `make soak-short` (the
// ~seconds CI smoke); both run under the race detector.
package soaktest

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/collector"
)

// Daemon is a collector served over real TCP at an address that
// survives restarts: Stop severs every live connection and closes the
// collector (as much of a crash as an in-process daemon can stage while
// still letting the test rebind the port), and Start brings a fresh
// incarnation up on the same address and the same directory, so clients
// holding the old URL reconnect into the replayed control state.
type Daemon struct {
	cfg  collector.Config
	addr string

	mu  sync.Mutex
	srv *collector.Server
	hs  *http.Server
}

// NewDaemon starts the first incarnation on a fresh loopback port.
func NewDaemon(cfg collector.Config) (*Daemon, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("soaktest: %w", err)
	}
	d := &Daemon{cfg: cfg, addr: ln.Addr().String()}
	if err := d.serve(ln); err != nil {
		ln.Close()
		return nil, err
	}
	return d, nil
}

// Addr is the daemon's host:port — fixed for the Daemon's lifetime.
func (d *Daemon) Addr() string { return d.addr }

// URL is the base URL clients dial; it stays valid across restarts.
func (d *Daemon) URL() string { return "http://" + d.addr }

func (d *Daemon) serve(ln net.Listener) error {
	srv, err := collector.New(d.cfg)
	if err != nil {
		return fmt.Errorf("soaktest: %w", err)
	}
	hs := &http.Server{Handler: srv}
	d.mu.Lock()
	d.srv, d.hs = srv, hs
	d.mu.Unlock()
	go hs.Serve(ln)
	return nil
}

// Stop kills the current incarnation: the listener and every live
// connection are closed immediately (in-flight requests see a torn
// response, exactly like a daemon crash), then the collector is closed
// so its journals and control state are flushed. Safe to call twice.
func (d *Daemon) Stop() error {
	d.mu.Lock()
	srv, hs := d.srv, d.hs
	d.srv, d.hs = nil, nil
	d.mu.Unlock()
	if hs == nil {
		return nil
	}
	hs.Close()
	return srv.Close()
}

// Start brings a new incarnation up on the same address and directory.
// The port was just released by Stop, so the bind is retried briefly.
func (d *Daemon) Start() error {
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", d.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("soaktest: rebinding %s: %w", d.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := d.serve(ln); err != nil {
		ln.Close()
		return err
	}
	return nil
}

// Restart is one chaos cycle: kill, stay dark for downFor (clients see
// connection refused, not hangs), then come back on the same address.
func (d *Daemon) Restart(downFor time.Duration) error {
	if err := d.Stop(); err != nil {
		return err
	}
	time.Sleep(downFor)
	return d.Start()
}

// TornConnections aims malformed and prematurely-severed HTTP traffic
// at addr until ctx is done: requests torn mid-line, bodies shorter
// than their declared Content-Length, and ingest streams cut mid-JSON.
// The daemon must shrug all of it off — no wedged handlers, no leaked
// admission budget. Dial failures while the daemon is dark are part of
// the schedule and are skipped, not counted. Returns the number of torn
// connections actually delivered.
func TornConnections(ctx context.Context, addr string, every time.Duration) int {
	payloads := []string{
		"POST /v1/ing",
		"POST " + collector.PathIngest + "?lease=lease-999-999 HTTP/1.1\r\nHost: soak\r\nContent-Length: 1048576\r\n\r\n{\"experiment\":",
		"POST " + collector.PathRegister + " HTTP/1.1\r\nHost: soak\r\nContent-Length: 64\r\n\r\n{\"worker\":\"to",
		"GET " + collector.PathStatus + " HTTP/1.1\r\nHost",
	}
	delivered := 0
	for i := 0; ; i++ {
		select {
		case <-ctx.Done():
			return delivered
		case <-time.After(every):
		}
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			continue // daemon is dark: the restart injector's window
		}
		io.WriteString(conn, payloads[i%len(payloads)])
		conn.Close()
		delivered++
	}
}
