package collector_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/collector"
	"repro/internal/collector/client"
	"repro/internal/runstore"
)

// benchIngest streams 10^4 pre-built records through the real HTTP
// ingest path in 256-record batches under one lease — the collector
// half of the codec claim. The JSON/binary pair isolates the wire
// framing: everything else (loopback TCP, admission, shard append,
// fsync cadence) is identical.
func benchIngest(b *testing.B, binary bool) {
	const total, batch = 10_000, 256
	srv, err := collector.New(collector.Config{Dir: b.TempDir(), Shards: 1})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Close()

	c := client.New(hs.URL, nil)
	c.SetBinary(binary)
	ctx := context.Background()
	grant, err := c.Acquire(ctx, "bench", "bench ingest")
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]runstore.Record, 0, total)
	for i := 0; i < total; i++ {
		rec, err := runstore.NormalizeAppend(runstore.Record{
			Experiment: "bench ingest",
			Row:        i,
			Replicate:  0,
			Assignment: map[string]string{"cell": fmt.Sprintf("c%06d", i)},
			Responses:  map[string]float64{"ms": float64(i%97) + 0.5},
		})
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, rec)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < total; off += batch {
			end := min(off+batch, total)
			if err := c.Ingest(ctx, grant.Lease, recs[off:end]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(total), "records/op")
}

func BenchmarkIngestJSON(b *testing.B)   { benchIngest(b, false) }
func BenchmarkIngestBinary(b *testing.B) { benchIngest(b, true) }
