package collector_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/collector/client"
	"repro/internal/runstore"
)

// wireRecorder wraps the collector handler and notes the framing each
// data-path exchange actually used: the Content-Type of every ingest
// request and of every snapshot response.
type wireRecorder struct {
	next http.Handler
	mu   sync.Mutex
	in   []string // ingest request Content-Type
	out  []string // snapshot response Content-Type
}

func (w *wireRecorder) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path == collector.PathIngest {
		w.mu.Lock()
		w.in = append(w.in, r.Header.Get("Content-Type"))
		w.mu.Unlock()
	}
	w.next.ServeHTTP(rw, r)
	if r.URL.Path == collector.PathSnapshot {
		w.mu.Lock()
		w.out = append(w.out, rw.Header().Get("Content-Type"))
		w.mu.Unlock()
	}
}

// TestBinaryWireNegotiation drives the full client surface with binary
// framing selected and checks both halves of the negotiation: the data
// path really carries runstore.WireBinaryType in both directions, and
// the records round-trip intact through the binary encode/decode pair.
func TestBinaryWireNegotiation(t *testing.T) {
	srv, err := collector.New(collector.Config{Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := &wireRecorder{next: srv}
	hs := httptest.NewServer(rec)
	defer hs.Close()
	defer srv.Close()

	c := client.New(hs.URL, nil)
	c.SetBinary(true)
	ctx := context.Background()
	const exp = "binary wire exp"

	name, err := c.Register(ctx, "bin-worker")
	if err != nil {
		t.Fatal(err)
	}
	grant, err := c.Acquire(ctx, name, exp)
	if err != nil {
		t.Fatal(err)
	}
	recs := []runstore.Record{
		recordForShard(t, exp, grant.Shard, grant.Shards, 0),
		recordForShard(t, exp, grant.Shard, grant.Shards, 1),
	}
	if err := c.Ingest(ctx, grant.Lease, recs); err != nil {
		t.Fatal(err)
	}
	warm, err := c.Snapshot(ctx, grant.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != len(recs) {
		t.Fatalf("snapshot holds %d record(s), want %d", len(warm), len(recs))
	}
	for _, r := range recs {
		norm, _ := runstore.NormalizeAppend(r)
		got, ok := warm[norm.Key()]
		if !ok {
			t.Fatalf("snapshot is missing %s", norm.Key())
		}
		if got.Responses["ms"] != r.Responses["ms"] {
			t.Errorf("record %s responses changed over the binary wire: %v -> %v",
				norm.Key(), r.Responses, got.Responses)
		}
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.in) == 0 || len(rec.out) == 0 {
		t.Fatalf("recorder saw %d ingest(s), %d snapshot(s)", len(rec.in), len(rec.out))
	}
	for _, ct := range rec.in {
		if ct != runstore.WireBinaryType {
			t.Errorf("ingest request Content-Type = %q, want %q", ct, runstore.WireBinaryType)
		}
	}
	for _, ct := range rec.out {
		if ct != runstore.WireBinaryType {
			t.Errorf("snapshot response Content-Type = %q, want %q", ct, runstore.WireBinaryType)
		}
	}
}

// TestJSONWireDefault pins the spec'd fallback: a client that never
// opted into binary framing speaks NDJSON on both data paths, byte for
// byte what docs/COLLECTOR.md promises a minimal implementation.
func TestJSONWireDefault(t *testing.T) {
	srv, err := collector.New(collector.Config{Dir: t.TempDir(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := &wireRecorder{next: srv}
	hs := httptest.NewServer(rec)
	defer hs.Close()
	defer srv.Close()

	c := client.New(hs.URL, nil)
	ctx := context.Background()
	const exp = "json wire exp"
	grant, err := c.Acquire(ctx, "json-worker", exp)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(ctx, grant.Lease, []runstore.Record{
		recordForShard(t, exp, grant.Shard, grant.Shards, 0),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Snapshot(ctx, grant.Lease); err != nil {
		t.Fatal(err)
	}

	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, ct := range rec.in {
		if ct != runstore.WireJSONType {
			t.Errorf("ingest request Content-Type = %q, want %q", ct, runstore.WireJSONType)
		}
	}
	for _, ct := range rec.out {
		if ct != runstore.WireJSONType {
			t.Errorf("snapshot response Content-Type = %q, want %q", ct, runstore.WireJSONType)
		}
	}
}

// TestFleetMergeByteIdentityBinaryWire reruns the fleet byte-identity
// acceptance test with every worker on the binary wire: the encoding of
// the transport must leave the stored, merged, compacted journal bytes
// exactly as the single-process JSON run produces them.
func TestFleetMergeByteIdentityBinaryWire(t *testing.T) {
	const reps, shards, fleet = 2, 2, 2
	srvDir := t.TempDir()
	srv, err := collector.New(collector.Config{Dir: srvDir, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make([]error, fleet)
	for i := 0; i < fleet; i++ {
		w, err := client.NewWorker(client.Options{
			URL:         hs.URL,
			Worker:      fmt.Sprintf("binfleet-%d", i),
			Workers:     2,
			SpoolDir:    t.TempDir(),
			FlushEvery:  2,
			AcquireWait: 10 * time.Millisecond,
			BinaryWire:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = w.Execute(context.Background(), e2eExperiment(t, reps, nil))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	want := referenceJournal(t, reps)
	got := collectedJournal(t, srvDir, shards)
	if !bytes.Equal(got, want) {
		t.Errorf("binary-wire collected store differs from the single-process journal:\ncollected:\n%s\nreference:\n%s", got, want)
	}
}
