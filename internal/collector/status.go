package collector

import (
	"fmt"
	"net/http"
	"sort"

	"repro/internal/design"
	"repro/internal/runstore"
)

// handleStatus reports the live control plane: registered workers and,
// per experiment, the shard pool (free/leased/done), live leases, and
// traffic counters. It reads only the mutex-guarded control state — no
// store I/O — so fleets can poll it hard.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	now := s.cfg.Clock()
	s.mu.Lock()
	resp := StatusResponse{Epoch: s.epoch, Workers: s.sortedWorkersLocked()}
	names := make([]string, 0, len(s.exps))
	for name := range s.exps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := s.exps[name]
		s.sweepLocked(e, now)
		es := ExperimentStatus{
			Experiment:    e.name,
			Shards:        len(e.shards),
			Records:       e.records,
			InflightBytes: e.inflight,
		}
		for _, sh := range e.shards {
			switch sh.state {
			case shardFree:
				es.Free++
			case shardLeased:
				es.Leased++
			case shardDone:
				es.Done++
			}
		}
		for _, l := range e.leases {
			es.Leases = append(es.Leases, LeaseStatus{
				Lease:     l.id,
				Worker:    l.worker,
				Shard:     l.shard,
				ExpiresIn: l.expires.Sub(now).Milliseconds(),
			})
		}
		sort.Slice(es.Leases, func(i, j int) bool { return es.Leases[i].Shard < es.Leases[j].Shard })
		resp.Experiments = append(resp.Experiments, es)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleCells reports one experiment's per-cell replicate counts — the
// live budget view — from a snapshot-at-start scan of its store, the
// same streaming iteration contract every read-only consumer uses.
func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("experiment")
	if name == "" {
		writeError(w, http.StatusBadRequest, "collector: cells needs ?experiment=")
		return
	}
	s.mu.Lock()
	e, ok := s.exps[name]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("collector: experiment %q has no collected records", name))
		return
	}
	type cell struct {
		assignment string
		hash       string
		reps       int
	}
	cells := map[string]*cell{}
	records := 0
	for rec, err := range e.store.Scan() {
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		records++
		c := cells[rec.Hash]
		if c == nil {
			c = &cell{assignment: design.Assignment(rec.Assignment).String(), hash: rec.Hash}
			cells[rec.Hash] = c
		}
		c.reps++
	}
	resp := CellsResponse{Experiment: name, Records: records}
	for _, c := range cells {
		resp.Cells = append(resp.Cells, CellStatus{Assignment: c.assignment, Hash: c.hash, Replicates: c.reps})
	}
	sort.Slice(resp.Cells, func(i, j int) bool { return resp.Cells[i].Assignment < resp.Cells[j].Assignment })
	writeJSON(w, http.StatusOK, resp)
}

// handleGate gates one experiment's collected records against the
// server's configured baseline store and reports the verdicts — the
// regression gate, live, while workers are still streaming.
func (s *Server) handleGate(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("experiment")
	if name == "" {
		writeError(w, http.StatusBadRequest, "collector: gate needs ?experiment=")
		return
	}
	if s.cfg.Baseline == "" {
		writeError(w, http.StatusNotFound, "collector: no baseline store configured (Config.Baseline)")
		return
	}
	s.mu.Lock()
	e, ok := s.exps[name]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("collector: experiment %q has no collected records", name))
		return
	}
	baseRecs, err := runstore.LoadRecords(s.cfg.Baseline)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("collector: baseline: %v", err))
		return
	}
	var base *runstore.Summary
	for _, sum := range runstore.Summarize(baseRecs) {
		if sum.Experiment == name {
			base = sum
			break
		}
	}
	if base == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("collector: baseline %s holds no experiment %q", s.cfg.Baseline, name))
		return
	}
	curRecs, err := runstore.Collect(e.store.Scan())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var cur *runstore.Summary
	for _, sum := range runstore.Summarize(curRecs) {
		if sum.Experiment == name {
			cur = sum
			break
		}
	}
	if cur == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("collector: experiment %q has no collected records yet", name))
		return
	}
	report, err := runstore.Gate(base, cur, runstore.GateOptions{})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := GateResponse{Experiment: name, Report: report.String()}
	for _, f := range report.Findings {
		if f.Verdict == runstore.Regressed {
			resp.Regressed++
		}
		resp.Verdicts = append(resp.Verdicts, GateVerdict{
			Assignment: design.Assignment(f.Assignment).String(),
			Response:   f.Response,
			Verdict:    f.Verdict.String(),
			DeltaPct:   f.DeltaPct,
		})
	}
	resp.OK = resp.Regressed == 0
	writeJSON(w, http.StatusOK, resp)
}
