package collector

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// StateFile is the daemon's control-state journal, kept next to the
// collected stores in Config.Dir. It records worker registrations and
// the lease lifecycle so a restarted daemon resumes where the old one
// stopped instead of orphaning its fleet.
const StateFile = "collector.state.jsonl"

// stateEvent is one line of the control-state journal. The framing is
// the runstore journal's: one JSON object per line, a single Write+Sync
// per append, torn trailing line truncated on open. Event types:
//
//	epoch   — a daemon started; Epoch is its (monotonic) incarnation
//	worker  — a worker registered
//	acquire — a lease was granted (Lease, Worker, Experiment, Shard,
//	          ExpiresMS absolute unix-milli deadline)
//	renew   — a live lease's deadline moved (Lease, ExpiresMS)
//	release — a lease was returned; Complete marks the shard done
//	expire  — the TTL sweep reclaimed a lease
type stateEvent struct {
	Type       string `json:"type"`
	Epoch      int    `json:"epoch,omitempty"`
	Worker     string `json:"worker,omitempty"`
	Lease      string `json:"lease,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	Shard      int    `json:"shard,omitempty"`
	ExpiresMS  int64  `json:"expires_ms,omitempty"`
	Complete   bool   `json:"complete,omitempty"`
}

// stateLog is the append side of the control-state journal. Appends are
// control-plane traffic (registrations, lease transitions) — a few per
// worker per TTL — so the per-append fsync that makes them durable never
// contends with the ingest hot path.
type stateLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// openStateLog opens (creating if absent) the control-state journal and
// returns every complete event in file order. A torn trailing line — a
// daemon crash mid-append — is truncated, exactly as runstore.Open
// recovers a record journal; a corrupt line anywhere else is an error,
// because silently dropping a lease grant would hand one shard to two
// workers.
func openStateLog(path string) (*stateLog, []stateEvent, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("collector: state: %w", err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("collector: state: %w", err)
	}
	var events []stateEvent
	keep := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		end := keep + len(line) + 1 // the line plus its newline
		if end > len(data) {
			break // unterminated final line: torn, truncate below
		}
		var ev stateEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			if end == len(data) {
				break // torn tail that happens to end in newline-less junk
			}
			return nil, nil, fmt.Errorf("collector: state: %s: corrupt line at byte %d: %w", path, keep, err)
		}
		events = append(events, ev)
		keep = end
	}
	if err := sc.Err(); err != nil {
		// A scanner failure (e.g. a line past the buffer cap) stops the
		// loop exactly like a torn tail would; without this check every
		// event after it would be silently dropped — and a dropped lease
		// grant hands one shard to two workers.
		return nil, nil, fmt.Errorf("collector: state: %s: corrupt journal at byte %d: %w", path, keep, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("collector: state: %w", err)
	}
	if keep < len(data) {
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("collector: state: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("collector: state: %w", err)
	}
	return &stateLog{path: path, f: f}, events, nil
}

// append persists one event: single Write, then Sync, so a crash leaves
// at most one torn line for the next open to truncate.
func (s *stateLog) append(ev stateEvent) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("collector: state: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("collector: state journal %s is closed", s.path)
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("collector: state: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("collector: state: %w", err)
	}
	return nil
}

func (s *stateLog) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// leaseID builds a lease id carrying the granting daemon's epoch —
// "lease-<epoch>-<seq>" — so a lease from a previous incarnation is
// recognizable on sight and two daemons never mint colliding ids even
// though the per-epoch sequence restarts at 1.
func leaseID(epoch, seq int) string {
	return "lease-" + strconv.Itoa(epoch) + "-" + strconv.Itoa(seq)
}

// leaseEpoch extracts the epoch from a lease id, or 0 when the id does
// not carry one (including ids minted before epochs existed).
func leaseEpoch(id string) int {
	rest, ok := strings.CutPrefix(id, "lease-")
	if !ok {
		return 0
	}
	epochStr, _, ok := strings.Cut(rest, "-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(epochStr)
	if err != nil || n < 1 {
		return 0
	}
	return n
}

// replayState rebuilds the daemon's control state from the event log:
// the worker set, every experiment that held a live or completed shard,
// and the live lease table. It returns the highest epoch seen, so the
// caller can mint the next one. Events referencing shards outside the
// configured pool (the operator shrank Config.Shards between restarts)
// are dropped — the records are still on disk; only the control claim is
// forgotten.
func (s *Server) replayState(events []stateEvent) (lastEpoch int, err error) {
	type pending struct {
		worker     string
		experiment string
		shard      int
		expires    time.Time
	}
	live := make(map[string]*pending)
	order := []string{} // grant order, for deterministic replay
	done := make(map[string][]int)
	for _, ev := range events {
		switch ev.Type {
		case "epoch":
			if ev.Epoch > lastEpoch {
				lastEpoch = ev.Epoch
			}
		case "worker":
			s.workers[ev.Worker] = struct{}{}
		case "acquire":
			if ev.Shard < 0 || ev.Shard >= s.cfg.Shards {
				continue
			}
			if _, ok := live[ev.Lease]; !ok {
				order = append(order, ev.Lease)
			}
			live[ev.Lease] = &pending{
				worker:     ev.Worker,
				experiment: ev.Experiment,
				shard:      ev.Shard,
				expires:    time.UnixMilli(ev.ExpiresMS),
			}
		case "renew":
			if p, ok := live[ev.Lease]; ok {
				p.expires = time.UnixMilli(ev.ExpiresMS)
			}
		case "release":
			if p, ok := live[ev.Lease]; ok && ev.Complete {
				done[p.experiment] = append(done[p.experiment], p.shard)
			}
			delete(live, ev.Lease)
		case "expire":
			delete(live, ev.Lease)
		}
	}
	for name, shards := range done {
		e, err := s.experimentLocked(name)
		if err != nil {
			return 0, fmt.Errorf("collector: state replay: %w", err)
		}
		for _, sh := range shards {
			if sh >= 0 && sh < len(e.shards) {
				e.shards[sh] = shardState{state: shardDone}
			}
		}
	}
	for _, id := range order {
		p, ok := live[id]
		if !ok {
			continue
		}
		e, err := s.experimentLocked(p.experiment)
		if err != nil {
			return 0, fmt.Errorf("collector: state replay: %w", err)
		}
		if e.shards[p.shard].state != shardFree {
			// Two journaled grants for one shard can only mean the log was
			// hand-edited; keep the first, drop the rest.
			continue
		}
		l := &lease{id: id, exp: e, shard: p.shard, worker: p.worker, expires: p.expires}
		e.shards[p.shard] = shardState{state: shardLeased, l: l}
		e.leases[id] = l
	}
	return lastEpoch, nil
}
