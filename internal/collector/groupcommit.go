package collector

import (
	"time"

	"repro/internal/runstore"
	"repro/internal/runstore/shardstore"
)

// commitReq is one ingest batch waiting to become durable: the decoded
// records, their wire size (for the byte-bounded gather window), and the
// channel the committer answers on once the fsync covering them returns.
type commitReq struct {
	recs  []runstore.Record
	bytes int64
	start time.Time
	done  chan error
}

// committer is the group-commit engine for one (experiment, shard): a
// single goroutine that drains concurrent ingest batches from a channel
// and lands them with one fsync per gather window instead of one per
// batch. The window opens when the first batch arrives and closes after
// Config.CommitWindow or once Config.CommitMaxBytes is gathered —
// whichever comes first — so an idle daemon commits a lone batch after
// at most the window, and a saturated one commits as fast as the disk
// syncs. Batches never reorder (one goroutine, one channel) and the
// reply is sent only after AppendBatch returns, so the 200 a worker
// sees still means "durably stored".
type committer struct {
	ch       chan commitReq
	store    *shardstore.Store
	window   time.Duration
	maxBytes int64
	met      *serverMetrics
	stopped  chan struct{} // closed when the goroutine drains and exits
}

func newCommitter(store *shardstore.Store, window time.Duration, maxBytes int64, met *serverMetrics) *committer {
	c := &committer{
		ch:       make(chan commitReq, 64),
		store:    store,
		window:   window,
		maxBytes: maxBytes,
		met:      met,
		stopped:  make(chan struct{}),
	}
	go c.run()
	return c
}

// run is the commit loop. Closing c.ch stops it: every batch already
// submitted is still committed before the goroutine exits, which is what
// lets Server.Close promise that acknowledged bytes are on disk.
func (c *committer) run() {
	defer close(c.stopped)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for first := range c.ch {
		batch := []commitReq{first}
		size := first.bytes
		if c.window > 0 {
			timer.Reset(c.window)
		gather:
			for size < c.maxBytes {
				select {
				case req, ok := <-c.ch:
					if !ok {
						break gather // Close: land what we hold, then exit via range
					}
					batch = append(batch, req)
					size += req.bytes
				case <-timer.C:
					break gather
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		c.land(batch)
	}
}

// land makes one gathered batch durable with a single AppendBatch (one
// fsync per shard journal touched) and answers every waiter.
func (c *committer) land(batch []commitReq) {
	recs := 0
	for _, req := range batch {
		recs += len(req.recs)
	}
	flat := make([]runstore.Record, 0, recs)
	for _, req := range batch {
		flat = append(flat, req.recs...)
	}
	err := c.store.AppendBatch(flat)
	now := time.Now()
	c.met.groupCommits.Inc()
	c.met.fsyncCoalesced.Add(int64(len(batch) - 1))
	for _, req := range batch {
		c.met.commitSeconds.Observe(now.Sub(req.start).Seconds())
		req.done <- err
	}
}

// commit submits one decoded ingest batch for the experiment's shard and
// blocks until the fsync covering it returns. Callers must have entered
// the experiment's submitter group (experiment.enter) so Close cannot
// close the channel mid-send.
func (e *experiment) commit(shard int, recs []runstore.Record, bytes int64) error {
	if len(recs) == 0 {
		return nil
	}
	req := commitReq{recs: recs, bytes: bytes, start: time.Now(), done: make(chan error, 1)}
	e.committers[shard].ch <- req
	return <-req.done
}
