package collector

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/warehouse"
)

// queryState is the server's lazily-opened warehouse over its store
// directory. The warehouse is a read-only consumer of the collected
// shard journals: every query refreshes the catalog first (incremental
// — unchanged files are skipped on a stat), so answers track the live
// stores without the daemon scheduling any background work.
type queryState struct {
	mu sync.Mutex
	wh *warehouse.Warehouse
}

// warehouseLocked opens (once) the server's warehouse. The index file
// lives next to the collected stores, so a daemon restart keeps it.
func (s *Server) warehouse() (*warehouse.Warehouse, error) {
	s.query.mu.Lock()
	defer s.query.mu.Unlock()
	if s.query.wh == nil {
		wh, err := warehouse.Open(s.cfg.Dir, warehouse.Options{
			Metrics: s.reg,
			Clock:   s.cfg.Clock,
		})
		if err != nil {
			return nil, err
		}
		s.query.wh = wh
	}
	return s.query.wh, nil
}

// closeWarehouse releases the lazily-opened warehouse; called by Close.
func (s *Server) closeWarehouse() error {
	s.query.mu.Lock()
	defer s.query.mu.Unlock()
	if s.query.wh == nil {
		return nil
	}
	err := s.query.wh.Close()
	s.query.wh = nil
	return err
}

// handleQuery answers GET /v1/query: a read-only warehouse query over
// the collected stores. Like the status and metrics views it stays
// outside the bearer-token gate — it serves aggregates, never record
// data — and it never mutates the stores (retention pruning is a CLI
// operation, not a daemon endpoint).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := queryRequestFromURL(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	wh, err := s.warehouse()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if _, err := wh.Refresh(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	res, err := wh.Query(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// queryRequestFromURL maps the /v1/query parameters onto a warehouse
// Request; defaults are the warehouse's own.
func queryRequestFromURL(r *http.Request) (warehouse.Request, error) {
	q := r.URL.Query()
	req := warehouse.Request{
		Kind:       q.Get("kind"),
		Experiment: q.Get("experiment"),
		Cell:       q.Get("cell"),
		Response:   q.Get("response"),
	}
	if v := q.Get("confidence"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return req, fmt.Errorf("collector: bad confidence %q: %v", v, err)
		}
		req.Confidence = f
	}
	if v := q.Get("tolerance"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return req, fmt.Errorf("collector: bad tolerance %q: %v", v, err)
		}
		req.Tolerance = f
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("collector: bad limit %q: %v", v, err)
		}
		req.Limit = n
	}
	return req, nil
}
