// Internal-package tests for the control-state journal primitives and
// the Retry-After rounding — the pieces the HTTP-level tests exercise
// only indirectly.
package collector

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLeaseIDRoundTrip(t *testing.T) {
	cases := []struct {
		id   string
		want int
	}{
		{leaseID(1, 1), 1},
		{leaseID(7, 200), 7},
		{"lease-12-3", 12},
		{"lease-3", 0},      // no sequence part
		{"lease-abc-3", 0},  // non-numeric epoch
		{"lease-0-3", 0},    // epochs start at 1
		{"lease--1-3", 0},   // negative
		{"run-1-3", 0},      // wrong prefix
		{"", 0},             // empty
		{"lease-1-2-3", 1},  // extra dashes stay in the sequence part
	}
	for _, tc := range cases {
		if got := leaseEpoch(tc.id); got != tc.want {
			t.Errorf("leaseEpoch(%q) = %d, want %d", tc.id, got, tc.want)
		}
	}
}

func TestStateLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, StateFile)

	log, _, err := openStateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	events := []stateEvent{
		{Type: "epoch", Epoch: 1},
		{Type: "worker", Worker: "w1"},
		{Type: "acquire", Lease: "lease-1-1", Worker: "w1", Experiment: "e", Shard: 0, ExpiresMS: 5_000},
	}
	for _, ev := range events {
		if err := log.append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a torn final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"renew","lease":"lea`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	log2, replayed, err := openStateLog(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer log2.close()
	if len(replayed) != len(events) {
		t.Fatalf("replayed %d event(s), want %d (torn tail dropped)", len(replayed), len(events))
	}
	for i, ev := range replayed {
		if ev != events[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, events[i])
		}
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d >= %d bytes", after.Size(), before.Size())
	}

	// Appends continue cleanly after recovery.
	if err := log2.append(stateEvent{Type: "release", Lease: "lease-1-1"}); err != nil {
		t.Fatal(err)
	}
	log2.close()
	_, replayed, err = openStateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(events)+1 || replayed[len(replayed)-1].Type != "release" {
		t.Fatalf("post-recovery append lost: %+v", replayed)
	}
}

func TestStateLogCorruptMiddleLineRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, StateFile)
	body := `{"type":"epoch","epoch":1}` + "\n" +
		`{"type":"worker","wor` + "\n" + // corrupt, but NOT the tail
		`{"type":"worker","worker":"w1"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := openStateLog(path)
	if err == nil {
		t.Fatal("corrupt middle line accepted; dropping a lease grant mid-log must be an error")
	}
	if !strings.Contains(err.Error(), "corrupt line") {
		t.Fatalf("error %q does not name the corrupt line", err)
	}
}

func TestStateLogScannerFailureRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, StateFile)
	// A line past the scanner's 1 MiB buffer cap stops the scan loop the
	// same way a torn tail would — but valid events follow it, so
	// treating it as a tail would silently drop them (and a dropped
	// lease grant hands one shard to two workers). It must be an error.
	huge := `{"type":"worker","worker":"` + strings.Repeat("x", (1<<20)+1024) + `"}`
	body := `{"type":"epoch","epoch":1}` + "\n" + huge + "\n" +
		`{"type":"worker","worker":"w1"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := openStateLog(path)
	if err == nil {
		t.Fatal("scanner failure mid-file accepted; events after it would be silently dropped")
	}
	if !strings.Contains(err.Error(), "corrupt journal") {
		t.Fatalf("error %q does not name the corrupt journal", err)
	}
}

func TestRetryAfterHeaderRounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{100 * time.Millisecond, "0"},
		{499 * time.Millisecond, "0"},
		{500 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1400 * time.Millisecond, "1"},
		{1600 * time.Millisecond, "2"},
		{30 * time.Second, "30"},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		retryAfterHeader(w, tc.d)
		if got := w.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("retryAfterHeader(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
