// Package collector_test exercises the collector daemon end to end
// over real HTTP (httptest.Server) — under `go test -race` this is the
// CI smoke test of the whole control plane: leases, warm-start
// snapshots, ingest validation, backpressure, and the status surface.
package collector_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/collector/client"
	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
)

// fakeClock drives lease expiry deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// startServer builds a collector on a temp dir and serves it over HTTP.
func startServer(t *testing.T, mutate func(*collector.Config)) (*httptest.Server, *client.Client) {
	t.Helper()
	cfg := collector.Config{Dir: t.TempDir(), Shards: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := collector.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs, client.New(hs.URL, nil)
}

// testRecord builds a valid record whose assignment routes wherever its
// seed routes; use recordForShard to pin the shard.
func testRecord(experiment string, seed, rep int) runstore.Record {
	return runstore.Record{
		Experiment: experiment,
		Row:        seed,
		Replicate:  rep,
		Assignment: map[string]string{"x": fmt.Sprintf("v%d", seed)},
		Responses:  map[string]float64{"ms": float64(10*seed + rep)},
	}
}

// recordForShard finds a record routed to the wanted shard.
func recordForShard(t *testing.T, experiment string, shard, shards, rep int) runstore.Record {
	t.Helper()
	for seed := 0; seed < 1000; seed++ {
		rec := testRecord(experiment, seed, rep)
		if runstore.ShardIndex(runstore.AssignmentHash(rec.Assignment), shards) == shard {
			return rec
		}
	}
	t.Fatal("no assignment routes to the wanted shard")
	return runstore.Record{}
}

func TestLeaseLifecycle(t *testing.T) {
	_, c := startServer(t, nil)
	ctx := context.Background()
	const exp = "lease exp"

	name, err := c.Register(ctx, "")
	if err != nil || name == "" {
		t.Fatalf("register: %q, %v", name, err)
	}

	// Two shards, two leases; a third worker finds everything busy.
	g1, err := c.Acquire(ctx, name, exp)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := c.Acquire(ctx, "other", exp)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Shards != 2 || g2.Shards != 2 || g1.Shard == g2.Shard {
		t.Fatalf("grants %+v / %+v, want the two distinct shards", g1, g2)
	}
	if _, err := c.Acquire(ctx, "third", exp); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("third acquire = %v, want ErrBusy", err)
	}

	// Stream two records into g1's shard; the snapshot serves them back.
	recs := []runstore.Record{
		recordForShard(t, exp, g1.Shard, 2, 0),
		recordForShard(t, exp, g1.Shard, 2, 1),
	}
	if err := c.Ingest(ctx, g1.Lease, recs); err != nil {
		t.Fatal(err)
	}
	warm, err := c.Snapshot(ctx, g1.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != 2 {
		t.Fatalf("snapshot holds %d record(s), want 2", len(warm))
	}
	for _, rec := range recs {
		norm, _ := runstore.NormalizeAppend(rec)
		if _, ok := warm[norm.Key()]; !ok {
			t.Errorf("snapshot is missing %s", norm.Key())
		}
	}

	// Renew keeps the lease; releasing both shards completes the
	// experiment and acquire drains workers with ErrComplete.
	if err := c.Renew(ctx, g1.Lease); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(ctx, g1.Lease, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Release(ctx, g2.Lease, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(ctx, name, exp); !errors.Is(err, client.ErrComplete) {
		t.Fatalf("acquire after completion = %v, want ErrComplete", err)
	}

	// Status reflects the drained pool.
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Experiments) != 1 || st.Experiments[0].Done != 2 || st.Experiments[0].Records != 2 {
		t.Errorf("status = %+v, want 2 shards done, 2 records", st.Experiments)
	}
}

func TestLeaseExpiryHandsShardOverWarm(t *testing.T) {
	clock := newFakeClock()
	_, c := startServer(t, func(cfg *collector.Config) {
		cfg.Shards = 1
		cfg.LeaseTTL = 30 * time.Second
		cfg.Clock = clock.Now
	})
	ctx := context.Background()
	const exp = "expiry exp"

	g1, err := c.Acquire(ctx, "doomed", exp)
	if err != nil {
		t.Fatal(err)
	}
	recs := []runstore.Record{
		recordForShard(t, exp, 0, 1, 0),
		recordForShard(t, exp, 0, 1, 1),
	}
	if err := c.Ingest(ctx, g1.Lease, recs); err != nil {
		t.Fatal(err)
	}

	// The worker goes silent; its lease expires and the shard returns to
	// the pool.
	clock.Advance(31 * time.Second)
	g2, err := c.Acquire(ctx, "survivor", exp)
	if err != nil {
		t.Fatalf("acquire after expiry: %v", err)
	}
	if g2.Shard != g1.Shard {
		t.Fatalf("survivor got shard %d, want the expired shard %d", g2.Shard, g1.Shard)
	}

	// The survivor warm-starts from everything the dead worker streamed.
	warm, err := c.Snapshot(ctx, g2.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != 2 {
		t.Errorf("warm snapshot holds %d record(s), want the dead worker's 2", len(warm))
	}

	// The dead worker's lease is gone for every verb.
	if err := c.Renew(ctx, g1.Lease); !errors.Is(err, client.ErrLeaseLost) {
		t.Errorf("renew of expired lease = %v, want ErrLeaseLost", err)
	}
	if err := c.Ingest(ctx, g1.Lease, recs); !errors.Is(err, client.ErrLeaseLost) {
		t.Errorf("ingest on expired lease = %v, want ErrLeaseLost", err)
	}
	if err := c.Release(ctx, g1.Lease, true); !errors.Is(err, client.ErrLeaseLost) {
		t.Errorf("release of expired lease = %v, want ErrLeaseLost", err)
	}
}

func TestIngestRejectsForeignRecords(t *testing.T) {
	_, c := startServer(t, nil)
	ctx := context.Background()
	const exp = "conflict exp"

	g, err := c.Acquire(ctx, "w", exp)
	if err != nil {
		t.Fatal(err)
	}

	// A record routed to the other shard is a worker sharding bug: 409.
	other := recordForShard(t, exp, 1-g.Shard, 2, 0)
	if err := c.Ingest(ctx, g.Lease, []runstore.Record{other}); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("wrong-shard ingest = %v, want ErrConflict", err)
	}

	// A record from another experiment is 409 too.
	foreign := recordForShard(t, exp, g.Shard, 2, 0)
	foreign.Experiment = "someone else"
	if err := c.Ingest(ctx, g.Lease, []runstore.Record{foreign}); !errors.Is(err, client.ErrConflict) {
		t.Fatalf("foreign-experiment ingest = %v, want ErrConflict", err)
	}

	// The refused batch appended nothing.
	warm, err := c.Snapshot(ctx, g.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != 0 {
		t.Errorf("refused batches left %d record(s) behind", len(warm))
	}
}

// TestIngestBackpressure pins the backpressure contract: while one
// admitted request holds the experiment's in-flight byte budget, the
// next ingest gets 429 with a Retry-After hint, and succeeds once the
// budget frees.
func TestIngestBackpressure(t *testing.T) {
	hs, c := startServer(t, func(cfg *collector.Config) {
		cfg.Shards = 1
		cfg.MaxInflight = 64
	})
	ctx := context.Background()
	const exp = "busy exp"

	g, err := c.Acquire(ctx, "w", exp)
	if err != nil {
		t.Fatal(err)
	}
	rec := recordForShard(t, exp, 0, 1, 0)
	var line bytes.Buffer
	if err := runstore.EncodeWire(&line, rec); err != nil {
		t.Fatal(err)
	}

	// Request A: admitted, then stalls with its body half-sent, pinning
	// the in-flight budget.
	pr, pw := iopipe()
	defer pw.Close() // unwedge the held handler on any failure path
	reqA, err := http.NewRequest(http.MethodPost, hs.URL+collector.PathIngest+"?lease="+g.Lease, pr)
	if err != nil {
		t.Fatal(err)
	}
	reqA.ContentLength = int64(line.Len())
	doneA := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(reqA)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("request A status %s", resp.Status)
			}
		}
		doneA <- err
	}()

	// Wait until A is admitted (its bytes show as in-flight).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Experiments) == 1 && st.Experiments[0].InflightBytes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request A was never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Request B: the declared size would overflow MaxInflight → 429 (the
	// body is never read, so filler bytes suffice).
	reqB, err := http.NewRequest(http.MethodPost, hs.URL+collector.PathIngest+"?lease="+g.Lease,
		bytes.NewReader(bytes.Repeat([]byte("x"), 60)))
	if err != nil {
		t.Fatal(err)
	}
	respB, err := http.DefaultClient.Do(reqB)
	if err != nil {
		t.Fatal(err)
	}
	respB.Body.Close()
	if respB.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflowing ingest status = %s, want 429", respB.Status)
	}
	if respB.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After hint")
	}

	// A finishes; the budget frees; the same batch is now admitted.
	if _, err := pw.Write(line.Bytes()); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-doneA; err != nil {
		t.Fatal(err)
	}
	for { // the budget is released just after A's response is written
		st, err := c.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Experiments[0].InflightBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight budget never freed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Ingest(ctx, g.Lease, []runstore.Record{rec}); err != nil {
		t.Fatalf("ingest after the budget freed: %v", err)
	}
}

func TestStatusCellsAndGate(t *testing.T) {
	baseDir := t.TempDir()
	const exp = "gate exp"

	// Baseline journal: one cell at 10ms across two replicates.
	base, err := runstore.OpenDir(baseDir, exp)
	if err != nil {
		t.Fatal(err)
	}
	slowCell := recordForShard(t, exp, 0, 1, 0)
	for rep := 0; rep < 2; rep++ {
		rec := slowCell
		rec.Replicate = rep
		rec.Responses = map[string]float64{"ms": 10 + float64(rep)*0.1}
		if err := base.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	base.Close()

	hs, c := startServer(t, func(cfg *collector.Config) {
		cfg.Shards = 1
		cfg.Baseline = base.Path()
	})
	ctx := context.Background()
	g, err := c.Acquire(ctx, "w", exp)
	if err != nil {
		t.Fatal(err)
	}
	// Current run: the same cell, twice as slow — a regression.
	var cur []runstore.Record
	for rep := 0; rep < 2; rep++ {
		rec := slowCell
		rec.Replicate = rep
		rec.Responses = map[string]float64{"ms": 20 + float64(rep)*0.1}
		cur = append(cur, rec)
	}
	if err := c.Ingest(ctx, g.Lease, cur); err != nil {
		t.Fatal(err)
	}

	var cells collector.CellsResponse
	getJSON(t, hs.URL+collector.PathCells+"?experiment="+urlQueryEscape(exp), &cells)
	if cells.Records != 2 || len(cells.Cells) != 1 || cells.Cells[0].Replicates != 2 {
		t.Errorf("cells = %+v, want one cell with 2 replicates", cells)
	}
	wantAssign := design.Assignment(slowCell.Assignment).String()
	if cells.Cells[0].Assignment != wantAssign {
		t.Errorf("cell assignment %q, want %q", cells.Cells[0].Assignment, wantAssign)
	}

	var gate collector.GateResponse
	getJSON(t, hs.URL+collector.PathGate+"?experiment="+urlQueryEscape(exp), &gate)
	if gate.OK || gate.Regressed != 1 {
		t.Errorf("gate = %+v, want one regressed cell", gate)
	}
	if len(gate.Verdicts) != 1 || gate.Verdicts[0].Verdict != "REGRESSED" {
		t.Errorf("verdicts = %+v, want a single REGRESSED", gate.Verdicts)
	}
}

// The Worker executor must satisfy the harness contract.
var _ harness.Executor = (*client.Worker)(nil)

// iopipe is io.Pipe under a name that keeps the test body readable.
func iopipe() (*io.PipeReader, *io.PipeWriter) { return io.Pipe() }

// getJSON fetches a status endpoint and decodes its JSON body.
func getJSON(t *testing.T, u string, out any) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", u, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", u, err)
	}
}

func urlQueryEscape(s string) string { return url.QueryEscape(s) }
