package collector

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// handleAcquire grants a shard lease on one experiment:
//
//	200 AcquireResponse — a free (or expired-and-reclaimed) shard,
//	    leased to the caller for the server's TTL
//	204 — every shard of the experiment is complete; the worker drains
//	409 + Retry-After — all remaining shards are leased right now; retry
//
// The worker must then fetch the shard's warm-start snapshot
// (PathSnapshot) so records a previous owner already collected replay
// instead of re-executing.
func (s *Server) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req AcquireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("collector: bad acquire request: %v", err))
		return
	}
	if req.Experiment == "" {
		writeError(w, http.StatusBadRequest, "collector: acquire needs an experiment name")
		return
	}
	now := s.cfg.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, err := s.experimentLocked(req.Experiment)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if req.Worker != "" {
		if _, known := s.workers[req.Worker]; !known {
			s.workers[req.Worker] = struct{}{}
			s.persist(stateEvent{Type: "worker", Worker: req.Worker})
		}
		s.met.workers.Set(int64(len(s.workers)))
	}
	s.sweepLocked(e, now)
	free, done := -1, 0
	for i, sh := range e.shards {
		switch sh.state {
		case shardFree:
			if free < 0 {
				free = i
			}
		case shardDone:
			done++
		}
	}
	if free < 0 {
		if done == len(e.shards) {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		retryAfterHeader(w, s.cfg.RetryAfter)
		writeError(w, http.StatusConflict,
			fmt.Sprintf("collector: %s: all %d incomplete shard(s) are leased", e.name, len(e.shards)-done))
		return
	}
	s.seq++
	l := &lease{
		id:      leaseID(s.epoch, s.seq),
		exp:     e,
		shard:   free,
		worker:  req.Worker,
		expires: now.Add(s.cfg.LeaseTTL),
	}
	e.shards[free] = shardState{state: shardLeased, l: l}
	e.leases[l.id] = l
	s.met.leaseAcquired.Inc()
	s.persist(stateEvent{Type: "acquire", Lease: l.id, Worker: l.worker,
		Experiment: e.name, Shard: l.shard, ExpiresMS: l.expires.UnixMilli()})
	s.log.Info("lease granted", "lease", l.id, "worker", l.worker,
		"experiment", e.name, "shard", l.shard, "shards", len(e.shards))
	writeJSON(w, http.StatusOK, AcquireResponse{
		Lease:     l.id,
		Shard:     l.shard,
		Shards:    len(e.shards),
		TTLMillis: s.cfg.LeaseTTL.Milliseconds(),
	})
}

// leaseFail classifies a lease id that did not resolve to a live lease.
// An id minted by an earlier daemon incarnation answers 409 with the
// HeaderStaleLease marker — the "stale epoch" signal: the daemon
// restarted and did not resume this lease, so its holder must
// re-acquire, not retry. Anything else — current-epoch ids the TTL
// sweep reclaimed, ids never granted — stays the protocol's 410 Gone.
// s.epoch is fixed at New, so no lock is needed.
func (s *Server) leaseFail(w http.ResponseWriter, id string) (status int, msg string) {
	if epoch := leaseEpoch(id); epoch > 0 && epoch < s.epoch {
		w.Header().Set(HeaderStaleLease, "1")
		return http.StatusConflict, fmt.Sprintf(
			"collector: lease %s is from epoch %d; this daemon is epoch %d (restarted) — re-acquire", id, epoch, s.epoch)
	}
	return http.StatusGone, fmt.Sprintf("collector: lease %s is not live (expired or never granted)", id)
}

// handleRenew extends a live lease by the TTL. A lease the sweep has
// already reclaimed answers 410 Gone: the worker has lost the shard and
// must stop streaming — its local journal stays valid, and whatever it
// already ingested warm-starts the next owner.
func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("collector: bad renew request: %v", err))
		return
	}
	now := s.cfg.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leaseLocked(req.Lease, now)
	if !ok {
		status, msg := s.leaseFail(w, req.Lease)
		writeError(w, status, msg)
		return
	}
	l.expires = now.Add(s.cfg.LeaseTTL)
	s.met.leaseRenewed.Inc()
	s.persist(stateEvent{Type: "renew", Lease: l.id, ExpiresMS: l.expires.UnixMilli()})
	s.log.Debug("lease renewed", "lease", l.id, "worker", l.worker)
	writeJSON(w, http.StatusOK, RenewResponse{TTLMillis: s.cfg.LeaseTTL.Milliseconds()})
}

// handleRelease returns a shard: complete (it leaves the pool — the
// normal end of a fully executed shard) or abandoned (back to the free
// pool, warm, for another worker). Releasing a dead lease is 410, like
// renew.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("collector: bad release request: %v", err))
		return
	}
	now := s.cfg.Clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leaseLocked(req.Lease, now)
	if !ok {
		status, msg := s.leaseFail(w, req.Lease)
		writeError(w, status, msg)
		return
	}
	state := shardFree
	if req.Complete {
		state = shardDone
	}
	l.exp.shards[l.shard] = shardState{state: state}
	delete(l.exp.leases, l.id)
	s.met.leaseReleased.Inc()
	s.persist(stateEvent{Type: "release", Lease: l.id, Complete: req.Complete})
	s.log.Info("lease released", "lease", l.id, "worker", l.worker,
		"experiment", l.exp.name, "shard", l.shard, "complete", req.Complete)
	w.WriteHeader(http.StatusNoContent)
}
