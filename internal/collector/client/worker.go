package client

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/collector"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/runstore/shardstore"
	"repro/internal/sched"
)

// Options configure a Worker.
type Options struct {
	// URL is the collector's base URL (e.g. "http://host:8080").
	// Required.
	URL string
	// Worker names this worker in leases and status; empty asks the
	// server to assign one.
	Worker string
	// Workers, Retries, Timeout configure the underlying scheduler per
	// shard run, exactly as sched.Options do.
	Workers int
	Retries int
	Timeout time.Duration
	// SpoolDir is where the local spool journals (one per experiment
	// shard) are written; empty means a fresh temporary directory.
	SpoolDir string
	// FlushEvery is the ingest batch size in records; < 1 means 32.
	// 1 streams every append immediately — the crash-handoff tests'
	// setting, and the latency-over-throughput end of the knob.
	FlushEvery int
	// AcquireWait is how long to wait between acquire attempts while
	// every incomplete shard is leased by someone else; 0 means 1s.
	AcquireWait time.Duration
	// BinaryWire streams ingest uploads (and asks for snapshots) in the
	// binary wire framing instead of the NDJSON default — the encoding
	// is negotiated per request, so the setting is safe against a server
	// that only speaks JSON. See Client.SetBinary.
	BinaryWire bool
	// Token is the collector's shared bearer token, sent on every
	// request; must match the server's collector.Config.Token when the
	// daemon has auth enabled. See Client.SetToken.
	Token string
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Metrics is the registry the worker's instruments (and its
	// scheduler's) register in; nil means the process-wide obs.Default().
	Metrics *obs.Registry
	// Logger receives the worker's structured log; nil discards. The
	// perfeval work command wires it to stderr at the level chosen by
	// -Dcollector.log.
	Logger *slog.Logger
}

// Report accumulates what a Worker did across every shard it served.
type Report struct {
	Shards   int   // shard leases run to completion
	Executed int   // units executed live on this worker
	Replayed int   // units replayed from warm-start snapshots or spool
	Streamed int64 // records acknowledged by the collector
}

// Worker is the collector-backed harness.Executor: Execute leases
// shards of the experiment from the collector, runs each through the
// concurrent scheduler against a remoteStore, and loops until the
// server reports the experiment complete. It is the `perfeval work`
// engine, and composes with everything an executor composes with —
// harness.WithExecutor, the paperexp drivers, the public repro API.
type Worker struct {
	opts Options
	c    *Client

	registerOnce sync.Once
	name         string
	registerErr  error

	mu     sync.Mutex
	report Report
}

// NewWorker returns a Worker for the collector at opts.URL.
func NewWorker(opts Options) (*Worker, error) {
	if opts.URL == "" {
		return nil, fmt.Errorf("collector client: Options.URL is required")
	}
	if opts.AcquireWait <= 0 {
		opts.AcquireWait = time.Second
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.Default()
	}
	if opts.Logger == nil {
		opts.Logger = discardLogger()
	}
	c := New(opts.URL, opts.HTTPClient)
	c.SetMetrics(opts.Metrics)
	c.SetLogger(opts.Logger)
	c.SetBinary(opts.BinaryWire)
	c.SetToken(opts.Token)
	return &Worker{opts: opts, c: c}, nil
}

// MetricsSnapshot returns a point-in-time snapshot of the registry the
// worker's instruments live in (Options.Metrics or the process default).
func (w *Worker) MetricsSnapshot() obs.Snapshot { return w.opts.Metrics.Snapshot() }

var _ harness.Executor = (*Worker)(nil)

// Report returns what the worker has done so far.
func (w *Worker) Report() Report {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.report
}

// Execute implements harness.Executor: acquire a lease, run the leased
// shard through the scheduler (streaming appends as they complete),
// release it complete, and repeat until the collector answers that the
// experiment is done. The returned ResultSet holds the rows this worker
// executed or replayed; rows other workers own carry no replicates —
// the complete artifact is the server-side merge, exactly as in the
// single-disk sharded workflow.
//
// On lease loss or a server-reported conflict the worker stops cleanly
// with the cause: the local spool journal is valid, and everything the
// server acknowledged warm-starts the shard's next owner.
func (w *Worker) Execute(ctx context.Context, e *harness.Experiment) (*harness.ResultSet, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	w.registerOnce.Do(func() {
		w.name, w.registerErr = w.c.Register(ctx, w.opts.Worker)
	})
	if w.registerErr != nil {
		return nil, fmt.Errorf("collector client: register: %w", w.registerErr)
	}
	spool := w.opts.SpoolDir
	if spool == "" {
		dir, err := os.MkdirTemp("", "collector-spool-")
		if err != nil {
			return nil, fmt.Errorf("collector client: %w", err)
		}
		spool = dir
	}
	var best *harness.ResultSet
	// Transient-failure budget: a restarting daemon (connection refused
	// on acquire, a lease lost to the restart) costs one strike per
	// round; any completed shard run earns them all back. Only a failure
	// streak — the daemon is really gone, not just restarting — stops
	// the worker.
	const maxStrikes = 10
	strikes := 0
	for {
		grant, err := w.c.Acquire(ctx, w.name, e.Name)
		switch {
		case errors.Is(err, ErrComplete):
			if best == nil {
				// The experiment finished before this worker got a shard;
				// report the design with no replicates, like a sharded
				// worker that owned no rows.
				return emptyResultSet(e)
			}
			return best, nil
		case errors.Is(err, ErrBusy):
			select {
			case <-time.After(w.opts.AcquireWait):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		case err != nil:
			if ctx.Err() != nil {
				return nil, err
			}
			strikes++
			if strikes >= maxStrikes {
				return nil, fmt.Errorf("collector client: acquire failed %d times in a row: %w", strikes, err)
			}
			w.opts.Logger.Warn("acquire failed, retrying",
				"worker", w.name, "strikes", strikes, "err", err)
			select {
			case <-time.After(w.opts.AcquireWait):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		rs, err := w.runShard(ctx, e, spool, grant)
		if err != nil {
			// A lost lease — TTL expiry during a stall, a daemon restart
			// that did not resume it — is not this worker's failure: the
			// shard is (or will be) free again, the spool and everything
			// the server acknowledged warm-start its next owner, and that
			// next owner may as well be us. Re-acquire.
			if errors.Is(err, ErrLeaseLost) && ctx.Err() == nil {
				strikes++
				if strikes >= maxStrikes {
					return nil, err
				}
				w.opts.Logger.Warn("lease lost mid-run, re-acquiring",
					"worker", w.name, "lease", grant.Lease, "strikes", strikes, "err", err)
				continue
			}
			return nil, err
		}
		strikes = 0
		best = mergeResults(best, rs)
	}
}

// runShard executes one leased shard through the scheduler and releases
// it complete. The lease is renewed at a third of its TTL for as long
// as the run lasts.
func (w *Worker) runShard(ctx context.Context, e *harness.Experiment, spool string, grant *collector.AcquireResponse) (*harness.ResultSet, error) {
	warm, err := w.c.Snapshot(ctx, grant.Lease)
	if err != nil {
		return nil, err
	}
	store, err := newRemoteStore(ctx, w.c,
		grant.Lease, shardstore.Path(spool, e.Name, grant.Shard, grant.Shards), warm, w.opts.FlushEvery)
	if err != nil {
		return nil, err
	}

	// The renewer keeps the lease alive; losing it cancels the shard run
	// so the scheduler drains instead of burning work nobody will
	// collect.
	shardCtx, cancelShard := context.WithCancel(ctx)
	defer cancelShard()
	renewCtx, stopRenew := context.WithCancel(ctx)
	var renewWG sync.WaitGroup
	ttl := time.Duration(grant.TTLMillis) * time.Millisecond
	period := ttl / 3
	if period <= 0 {
		// A sub-3ms TTL (fake-clock test servers) must not hand
		// time.NewTicker a zero period, which panics.
		period = time.Millisecond
	}
	renewWG.Add(1)
	go func() {
		defer renewWG.Done()
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		renewLoop(renewCtx, grant.Lease, ttl, ticker.C, time.Now,
			func() error { return w.c.Renew(renewCtx, grant.Lease) },
			func(err error) {
				store.markLost(err)
				cancelShard()
			},
			w.opts.Logger)
	}()

	w.opts.Logger.Info("shard run starting", "worker", w.name, "lease", grant.Lease,
		"experiment", e.Name, "shard", grant.Shard, "shards", grant.Shards, "warm", len(warm))
	s := sched.New(sched.Options{
		Workers: w.opts.Workers,
		Retries: w.opts.Retries,
		Timeout: w.opts.Timeout,
		Store:   store,
		Shards:  grant.Shards,
		Shard:   grant.Shard,
		Metrics: w.opts.Metrics,
	})
	rs, runErr := s.Execute(shardCtx, e)
	stopRenew()
	renewWG.Wait()
	closeErr := store.Close() // final flush + spool close

	st := s.LastStats()
	w.mu.Lock()
	w.report.Executed += st.Executed
	w.report.Replayed += st.Replayed
	w.report.Streamed += store.Streamed()
	w.mu.Unlock()

	if lost := store.lostErr(); lost != nil {
		return nil, fmt.Errorf("collector client: shard %d of %s stopped cleanly (spool journal %s is valid): %w",
			grant.Shard, e.Name, store.LocalPath(), lost)
	}
	if runErr != nil {
		// A unit failure, not a lease problem: hand the shard back warm
		// so another worker (or a retry of this one) can finish it.
		relCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		if relErr := w.c.Release(relCtx, grant.Lease, false); relErr != nil {
			// Not fatal — the lease just expires on its own — but an
			// un-released shard is invisible dead time for the fleet, so
			// say which one is stuck and until when.
			w.opts.Logger.Warn("abandoning shard: release failed; shard stays leased until TTL expiry",
				"lease", grant.Lease, "experiment", e.Name, "shard", grant.Shard, "ttl", ttl, "err", relErr)
		}
		cancel()
		return nil, runErr
	}
	if closeErr != nil {
		return nil, closeErr
	}
	if err := w.c.Release(ctx, grant.Lease, true); err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.report.Shards++
	w.mu.Unlock()
	w.opts.Logger.Info("shard run complete", "worker", w.name, "lease", grant.Lease,
		"experiment", e.Name, "shard", grant.Shard,
		"executed", st.Executed, "replayed", st.Replayed, "streamed", store.Streamed())
	return rs, nil
}

// renewLoop keeps one lease alive: on every tick it renews, resetting
// the TTL deadline on success. ErrLeaseLost stops it immediately. Any
// other renew error — a flaky network, a restarting server — is logged
// at warn and tolerated only until a full TTL elapses with no
// successful renew: by then the server has expired the lease whatever
// the transport said, so continuing to execute would burn work that can
// only 410 on ingest. lost is called at most once, with an error
// matching ErrLeaseLost.
//
// The loop is driven entirely through its parameters (tick channel,
// clock, renew and lost callbacks) so tests run it against a fake clock
// with no timing dependence; runShard wires the real ticker and client.
func renewLoop(ctx context.Context, lease string, ttl time.Duration, tick <-chan time.Time, now func() time.Time, renew func() error, lost func(error), log *slog.Logger) {
	deadline := now().Add(ttl)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			err := renew()
			switch {
			case err == nil:
				deadline = now().Add(ttl)
			case errors.Is(err, ErrLeaseLost):
				lost(err)
				return
			case ctx.Err() != nil:
				// The shard run is shutting down: the renew failed because
				// its context died, not because the lease did.
				return
			default:
				log.Warn("lease renew failed", "lease", lease, "err", err)
				if !now().Before(deadline) {
					lost(fmt.Errorf("%w: no successful renew within TTL %v (last error: %v)", ErrLeaseLost, ttl, err))
					return
				}
			}
		}
	}
}

// emptyResultSet renders the design with zero replicates everywhere —
// what a worker that owned no rows reports.
func emptyResultSet(e *harness.Experiment) (*harness.ResultSet, error) {
	rs := &harness.ResultSet{Experiment: e}
	for r := 0; r < e.Design.NumRuns(); r++ {
		a, err := e.Design.Assignment(r)
		if err != nil {
			return nil, err
		}
		rs.Rows = append(rs.Rows, harness.ResultRow{Assignment: a})
	}
	return rs, nil
}

// mergeResults folds the result sets of successive shard runs: row
// ownership is disjoint, so for every row the run that executed it has
// the replicates and everyone else has none.
func mergeResults(acc, rs *harness.ResultSet) *harness.ResultSet {
	if acc == nil {
		return rs
	}
	for i := range acc.Rows {
		if i < len(rs.Rows) && len(rs.Rows[i].Reps) > len(acc.Rows[i].Reps) {
			acc.Rows[i] = rs.Rows[i]
		}
	}
	return acc
}
