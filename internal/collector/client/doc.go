// Package client is the worker side of the run collector
// (internal/collector): it turns a remote collector into a
// harness.Executor, so any experiment that runs on the in-process
// scheduler runs, unchanged, as one worker of a distributed fleet.
//
// The layering reuses every local guarantee instead of re-deriving it:
//
//   - Worker is the executor. For each harness experiment it loops
//     acquire → run → release: it leases one shard of the experiment's
//     pool from the collector, executes exactly that shard through
//     internal/sched (Options.Store + Shards/Shard — the same partition
//     arithmetic the single-disk workflow uses), and releases it
//     complete, until the server answers "experiment complete".
//   - remoteStore is the runstore.Store the scheduler journals into: a
//     local spool journal (durability — every completed unit is fsynced
//     on this machine before the scheduler moves on) tee'd into batched
//     NDJSON ingest streams to the collector (collection), with the
//     shard's server-side warm-start snapshot behind Lookup so units a
//     previous owner already collected replay instead of re-executing.
//   - A renewal goroutine keeps the lease alive at a third of its TTL.
//
// Failure contract: on a server-reported conflict (409 — a record that
// does not belong to the lease) or lease loss (410 — the TTL expired and
// the shard moved on), the worker stops cleanly with a descriptive
// error. The local spool journal is always valid — it is an ordinary
// runstore journal, merge-able and warm-startable — and the records the
// server acknowledged before the stop warm-start the shard's next
// owner. Backpressure (429 + Retry-After) is absorbed inside the client
// by honoring the hinted wait; the scheduler above never sees it.
package client
