package client

import (
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/runstore"
)

// TestIngestReplaysOnKilledKeepAlive kills the keep-alive connection
// under the second ingest — the handler hijacks the conn and closes it
// without a response, after the batch is fully uploaded. Because the
// request carries GetBody, net/http replays it transparently on a fresh
// connection; the caller sees two clean Ingests, the server sees the
// killed batch twice (idempotent: the store is last-wins).
func TestIngestReplaysOnKilledKeepAlive(t *testing.T) {
	var mu sync.Mutex
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("reading ingest body: %v", err)
		}
		mu.Lock()
		bodies = append(bodies, string(body))
		n := len(bodies)
		mu.Unlock()
		if n == 2 {
			// The server dies mid-batch: connection torn down with no
			// response bytes at all.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	// A private transport so connection reuse is under this test's
	// control, not shared with other tests.
	hc := &http.Client{Transport: &http.Transport{}}
	defer hc.CloseIdleConnections()
	c := New(srv.URL, hc)
	ctx := context.Background()
	recA := runstore.Record{Experiment: "e", Row: 0, Replicate: 0,
		Assignment: map[string]string{"f": "a"}, Responses: map[string]float64{"ms": 1}}
	recB := runstore.Record{Experiment: "e", Row: 1, Replicate: 0,
		Assignment: map[string]string{"f": "b"}, Responses: map[string]float64{"ms": 2}}

	if err := c.Ingest(ctx, "L", []runstore.Record{recA}); err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	if err := c.Ingest(ctx, "L", []runstore.Record{recB}); err != nil {
		t.Fatalf("second ingest (killed keep-alive) did not recover: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 3 {
		t.Fatalf("server saw %d uploads, want 3 (second batch replayed once)", len(bodies))
	}
	if bodies[1] != bodies[2] {
		t.Errorf("replayed body differs from the killed upload:\n%q\n%q", bodies[1], bodies[2])
	}
	if bodies[1] == bodies[0] {
		t.Errorf("second upload carried the first batch")
	}
	if !strings.Contains(bodies[2], `"f":"b"`) {
		t.Errorf("replayed body does not hold the second batch: %q", bodies[2])
	}
}

// TestIngest503RetriedThenRecovers: a 503 — the server could not store
// the batch (shutdown, disk hiccup) — is retried after the Retry-After
// hint instead of killing the run like a terminal 400; once the server
// recovers, the same idempotent batch lands. A server that never
// recovers must still surface the failure after a bounded number of
// attempts rather than spin forever.
func TestIngest503RetriedThenRecovers(t *testing.T) {
	rec := runstore.Record{Experiment: "e", Row: 0, Replicate: 0,
		Assignment: map[string]string{"f": "a"}, Responses: map[string]float64{"ms": 1}}
	serve := func(failures int) (*httptest.Server, func() int) {
		var mu sync.Mutex
		attempts := 0
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			mu.Lock()
			attempts++
			n := attempts
			mu.Unlock()
			if failures < 0 || n <= failures {
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"error":"collector: storing batch: disk full"}`)
				return
			}
			io.WriteString(w, `{"appended":1}`)
		}))
		return srv, func() int {
			mu.Lock()
			defer mu.Unlock()
			return attempts
		}
	}

	srv, attempts := serve(2)
	defer srv.Close()
	if err := New(srv.URL, nil).Ingest(context.Background(), "L", []runstore.Record{rec}); err != nil {
		t.Fatalf("ingest through two 503s: %v", err)
	}
	if n := attempts(); n != 3 {
		t.Errorf("server saw %d attempt(s), want 3 (two 503s, then success)", n)
	}

	dead, deadAttempts := serve(-1) // 503 forever
	defer dead.Close()
	err := New(dead.URL, nil).Ingest(context.Background(), "L", []runstore.Record{rec})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("permanent 503: err = %v, want the server's storage error", err)
	}
	if n := deadAttempts(); n != ingestRetries+1 {
		t.Errorf("permanent 503: server saw %d attempt(s), want %d", n, ingestRetries+1)
	}
}

// renewStep scripts one renew attempt: the fake-clock time at which it
// happens and the result it returns.
type renewStep struct {
	at  time.Duration
	err error
}

// renewHarness runs renewLoop against a manual tick channel and a fake
// clock. The clock only advances inside the renew callback — it
// consumes one scripted step per tick — so the loop's post-renew
// deadline arithmetic always reads the step's own time, with no race
// against the driving test. The unbuffered tick send is the barrier:
// it cannot complete until the loop is back at its select, i.e. done
// processing the previous step.
type renewHarness struct {
	t      *testing.T
	tick   chan time.Time
	steps  chan renewStep
	mu     sync.Mutex
	now    time.Time
	lost   chan error
	done   chan struct{}
	cancel context.CancelFunc
}

func startRenewHarness(t *testing.T, ttl time.Duration) *renewHarness {
	t.Helper()
	h := &renewHarness{
		t:     t,
		tick:  make(chan time.Time),
		steps: make(chan renewStep),
		now:   time.Unix(1_000_000, 0),
		lost:  make(chan error, 1),
		done:  make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	t.Cleanup(cancel)
	go func() {
		defer close(h.done)
		renewLoop(ctx, "L", ttl, h.tick,
			func() time.Time {
				h.mu.Lock()
				defer h.mu.Unlock()
				return h.now
			},
			func() error {
				s := <-h.steps
				h.mu.Lock()
				h.now = time.Unix(1_000_000, 0).Add(s.at)
				h.mu.Unlock()
				return s.err
			},
			func(err error) { h.lost <- err },
			discardLogger())
	}()
	return h
}

// step fires one tick and scripts the renew attempt it triggers: the
// attempt happens at the given offset from the harness start and
// returns renewErr.
func (h *renewHarness) step(at time.Duration, renewErr error) {
	h.t.Helper()
	select {
	case h.tick <- time.Time{}:
	case <-time.After(5 * time.Second):
		h.t.Fatal("renewLoop stopped accepting ticks")
	}
	select {
	case h.steps <- renewStep{at: at, err: renewErr}:
	case <-time.After(5 * time.Second):
		h.t.Fatal("renewLoop never ran the renew callback")
	}
}

func (h *renewHarness) expectLost(within time.Duration) error {
	h.t.Helper()
	select {
	case err := <-h.lost:
		return err
	case <-time.After(within):
		h.t.Fatal("renewLoop never reported the lease lost")
		return nil
	}
}

func (h *renewHarness) expectAlive() {
	h.t.Helper()
	select {
	case err := <-h.lost:
		h.t.Fatalf("renewLoop reported lost early: %v", err)
	default:
	}
}

// TestRenewLoopTTLElapsedMarksLost drives renewLoop with a fake clock:
// transient renew errors are tolerated while the TTL deadline holds,
// and the first failure at or past the deadline marks the lease lost
// with an ErrLeaseLost-matching error.
func TestRenewLoopTTLElapsedMarksLost(t *testing.T) {
	ttl := 30 * time.Second
	transient := errors.New("connection refused")
	h := startRenewHarness(t, ttl)

	h.step(10*time.Second, transient) // failing, but deadline (t+30s) holds
	h.expectAlive()
	h.step(20*time.Second, nil) // success: deadline moves to t+50s
	h.expectAlive()
	h.step(45*time.Second, transient) // failing again, new deadline holds
	h.expectAlive()
	h.step(50*time.Second, transient) // a full TTL with no success: lost
	err := h.expectLost(5 * time.Second)
	if !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("lost error = %v, want ErrLeaseLost", err)
	}
	if !strings.Contains(err.Error(), "no successful renew") {
		t.Errorf("lost error %q does not explain the TTL elapse", err)
	}
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
		t.Fatal("renewLoop did not return after marking the lease lost")
	}
}

// TestRenewLoopLeaseLostStopsImmediately: a server-reported 410 stops
// the loop on the spot, deadline state notwithstanding.
func TestRenewLoopLeaseLostStopsImmediately(t *testing.T) {
	h := startRenewHarness(t, 30*time.Second)
	h.step(1*time.Second, ErrLeaseLost)
	if err := h.expectLost(5 * time.Second); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("lost error = %v, want ErrLeaseLost", err)
	}
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
		t.Fatal("renewLoop did not return")
	}
}

// TestRenewLoopShutdownIsNotLoss: a renew that failed because the shard
// run is shutting down (ctx canceled under it) must not be reported as
// lease loss.
func TestRenewLoopShutdownIsNotLoss(t *testing.T) {
	h := startRenewHarness(t, 30*time.Second)
	h.cancel() // shutdown first, then the tick races in
	select {
	case h.tick <- time.Time{}:
		// The loop picked the tick branch: it must classify the failure —
		// staged far past the deadline — as shutdown, not loss.
		select {
		case h.steps <- renewStep{at: time.Hour, err: errors.New("context canceled")}:
		case <-h.done:
		}
	case <-h.done:
		// The loop exited on ctx.Done before taking the tick — fine.
	case <-time.After(5 * time.Second):
		t.Fatal("renewLoop accepted neither the tick nor the cancel")
	}
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
		t.Fatal("renewLoop did not return after cancel")
	}
	select {
	case err := <-h.lost:
		t.Fatalf("shutdown was reported as lease loss: %v", err)
	default:
	}
}

// TestRetryAfter pins the Retry-After parsing contract: both header
// forms, the zero hint, the cap, and the ±20% jitter band.
func TestRetryAfter(t *testing.T) {
	resp := func(header string) *http.Response {
		r := &http.Response{Header: http.Header{}}
		if header != "" {
			r.Header.Set("Retry-After", header)
		}
		return r
	}
	between := func(name string, d, lo, hi time.Duration) {
		t.Helper()
		if d < lo || d > hi {
			t.Errorf("%s: wait %v outside [%v, %v]", name, d, lo, hi)
		}
	}
	for i := 0; i < 50; i++ {
		between("absent", retryAfter(resp("")), 800*time.Millisecond, 1200*time.Millisecond)
		between("seconds", retryAfter(resp("5")), 4*time.Second, 6*time.Second)
		between("zero", retryAfter(resp("0")), retryAfterFloor, retryAfterFloor)
		between("garbage", retryAfter(resp("soon")), 800*time.Millisecond, 1200*time.Millisecond)
		between("capped", retryAfter(resp("3600")), 24*time.Second, 36*time.Second)
		date := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
		between("http-date", retryAfter(resp(date)), 7*time.Second, 13*time.Second)
		past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
		between("past-date", retryAfter(resp(past)), retryAfterFloor, retryAfterFloor)
	}
}

// TestRetryAfterProperty is the property-style companion to the pinned
// table above: randomized delta-seconds and HTTP-date headers, asserting
// for every draw that the honored wait lands inside the jittered band
// [0.8·base, 1.2·base], never above the 30s cap, and never below the
// floor — with no wall-clock sleeps anywhere.
func TestRetryAfterProperty(t *testing.T) {
	resp := func(header string) *http.Response {
		r := &http.Response{Header: http.Header{}}
		if header != "" {
			r.Header.Set("Retry-After", header)
		}
		return r
	}
	band := func(name string, d, base time.Duration) {
		t.Helper()
		base = min(base, retryAfterCap)
		lo := max(time.Duration(0.8*float64(base)), retryAfterFloor)
		hi := max(time.Duration(1.2*float64(base)), retryAfterFloor)
		if d < lo || d > hi {
			t.Fatalf("%s: wait %v outside jitter band [%v, %v]", name, d, lo, hi)
		}
	}
	rng := rand.New(rand.NewPCG(0xfeed, 0xbeef))

	// Delta-seconds form, 0..120s: inside the band, capped at 30s.
	for i := 0; i < 2000; i++ {
		secs := rng.IntN(121)
		d := retryAfter(resp(strconv.Itoa(secs)))
		band("delta-seconds", d, time.Duration(secs)*time.Second)
		if d > time.Duration(1.2*float64(retryAfterCap)) {
			t.Fatalf("wait %v above the jittered cap", d)
		}
	}

	// "0" is a real hint: exactly the floor, every time — the jitter of a
	// zero base is zero, and the floor is what keeps it off a hot spin.
	for i := 0; i < 100; i++ {
		if d := retryAfter(resp("0")); d != retryAfterFloor {
			t.Fatalf(`"0" hint: wait %v, want exactly the %v floor`, d, retryAfterFloor)
		}
	}

	// HTTP-date form: base is time.Until(date), so grant one second of
	// slack below (the header has whole-second resolution and the clock
	// moves between formatting and parsing).
	for i := 0; i < 300; i++ {
		offset := time.Duration(1+rng.IntN(90)) * time.Second
		date := time.Now().Add(offset).UTC().Format(http.TimeFormat)
		d := retryAfter(resp(date))
		base := min(offset, retryAfterCap)
		lo := max(time.Duration(0.8*float64(base-time.Second)), retryAfterFloor)
		hi := max(time.Duration(1.2*float64(base)), retryAfterFloor)
		if d < lo || d > hi {
			t.Fatalf("http-date +%v: wait %v outside [%v, %v]", offset, d, lo, hi)
		}
	}

	// The jitter must actually jitter: a fleet backpressured by one
	// response has to retry staggered, not in lockstep.
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		seen[retryAfter(resp("10"))] = true
	}
	if len(seen) < 8 {
		t.Errorf("64 draws of a 10s hint produced only %d distinct waits — jitter looks broken", len(seen))
	}
}

// TestRenewLoopDaemonRestartRecovers scripts a daemon restart mid-lease
// on the fake clock: renews fail with connection-refused while the
// daemon is down, the first renew against the restarted daemon (which
// resumed the lease from its state journal) succeeds, and the loop is
// still alive — no loss reported. When the shard run ends, the loop
// exits; the harness's done channel is the goroutine-leak check.
func TestRenewLoopDaemonRestartRecovers(t *testing.T) {
	refused := errors.New("dial tcp 127.0.0.1:9009: connect: connection refused")
	h := startRenewHarness(t, 30*time.Second)

	h.step(5*time.Second, refused) // daemon killed
	h.step(12*time.Second, refused)
	h.step(19*time.Second, refused) // restarting...
	h.expectAlive()
	h.step(25*time.Second, nil) // back up, lease resumed: renew lands
	h.expectAlive()
	h.step(40*time.Second, nil) // steady state again
	h.expectAlive()

	h.cancel() // the shard run finishes
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
		t.Fatal("renewLoop goroutine leaked after the shard run ended")
	}
	select {
	case err := <-h.lost:
		t.Fatalf("a survived restart was reported as lease loss: %v", err)
	default:
	}
}

// TestRenewLoopDaemonRestartOutlastsTTL is the unlucky half: the daemon
// stays down past a full TTL, so the loop must declare the lease lost
// (exactly once, with ErrLeaseLost) and exit — and the worker's spool
// journal must remain a valid, reopenable runstore journal holding every
// record it executed, because that spool is the warm-start artifact the
// shard's next owner builds on.
func TestRenewLoopDaemonRestartOutlastsTTL(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK) // ack every ingest batch
	}))
	defer srv.Close()
	spool := t.TempDir() + "/spool.jsonl"
	store, err := newRemoteStore(context.Background(), New(srv.URL, nil), "L", spool, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]runstore.Record, 4)
	for i := range recs {
		recs[i] = runstore.Record{Experiment: "e", Row: i, Replicate: 0,
			Assignment: map[string]string{"f": strconv.Itoa(i)}, Responses: map[string]float64{"ms": float64(i)}}
		if err := store.Append(recs[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	refused := errors.New("dial tcp 127.0.0.1:9009: connect: connection refused")
	h := startRenewHarness(t, 30*time.Second)
	h.step(10*time.Second, refused) // daemon killed...
	h.expectAlive()
	h.step(31*time.Second, refused) // ...and stayed dead past the TTL
	lostErr := h.expectLost(5 * time.Second)
	if !errors.Is(lostErr, ErrLeaseLost) {
		t.Fatalf("lost error = %v, want ErrLeaseLost", lostErr)
	}
	select {
	case <-h.done:
	case <-time.After(5 * time.Second):
		t.Fatal("renewLoop goroutine leaked after marking the lease lost")
	}

	// runShard's lost callback wiring: the store learns the cause, then
	// closes without a final flush (nobody to stream to).
	store.markLost(lostErr)
	if err := store.Close(); err != nil {
		t.Fatalf("closing lost store: %v", err)
	}
	j, err := runstore.Open(spool)
	if err != nil {
		t.Fatalf("spool did not reopen cleanly after lease loss: %v", err)
	}
	defer j.Close()
	if j.Torn() {
		t.Error("spool journal reopened torn")
	}
	if j.Len() != len(recs) {
		t.Fatalf("spool holds %d record(s), want %d", j.Len(), len(recs))
	}
	for _, want := range recs {
		if _, ok := j.Lookup(want.Experiment, runstore.AssignmentHash(want.Assignment), want.Replicate); !ok {
			t.Errorf("spool lost record row %d", want.Row)
		}
	}
}
