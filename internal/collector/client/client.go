package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"math/rand/v2"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/collector"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// Sentinel errors of the collector protocol. Callers match them with
// errors.Is; the wrapped text carries the server's own account.
var (
	// ErrComplete: every shard of the experiment is done (acquire
	// answered 204) — the worker drains.
	ErrComplete = errors.New("collector: experiment complete")
	// ErrBusy: all incomplete shards are leased right now (409 on
	// acquire) — retry after the server's hint.
	ErrBusy = errors.New("collector: all shards leased")
	// ErrLeaseLost: the lease is not live any more (410) — the TTL
	// expired and the shard is free for another worker. Stop streaming.
	ErrLeaseLost = errors.New("collector: lease lost")
	// ErrConflict: the server refused a record that does not belong to
	// the lease (409 on ingest) — a worker-side sharding bug.
	ErrConflict = errors.New("collector: conflict")
)

// Client speaks the collector wire protocol (docs/COLLECTOR.md) to one
// server. It is safe for concurrent use; 429 backpressure on ingest is
// absorbed internally by honoring the server's Retry-After hint.
type Client struct {
	base   string
	hc     *http.Client
	met    *clientMetrics
	log    *slog.Logger
	binary bool
	token  string
}

// New returns a Client for the collector at base (e.g.
// "http://host:8080"). httpClient nil means http.DefaultClient. The
// client's instruments register in obs.Default() and its log is
// discarded; SetMetrics and SetLogger override both.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base: base,
		hc:   httpClient,
		met:  newClientMetrics(obs.Default()),
		log:  discardLogger(),
	}
}

// SetBinary selects the binary wire framing (runstore.WireBinaryType)
// for ingest uploads and snapshot downloads; off, the client speaks the
// NDJSON default. Content negotiation keeps either setting safe against
// any server: ingest declares its framing in Content-Type, and snapshot
// decodes whatever framing the response Content-Type declares — a
// JSON-only server simply answers in JSON. Configure before the first
// request; like SetMetrics and SetLogger it is not synchronized with
// in-flight calls.
func (c *Client) SetBinary(on bool) { c.binary = on }

// SetToken attaches the collector's shared bearer token to every request
// (collector.Config.Token on the server side). Empty sends no
// Authorization header. Configure before the first request, like
// SetBinary.
func (c *Client) SetToken(token string) { c.token = token }

// Register announces the worker, returning the (server-assigned when
// empty) worker name.
func (c *Client) Register(ctx context.Context, worker string) (string, error) {
	var resp collector.RegisterResponse
	if err := c.postJSON(ctx, collector.PathRegister, collector.RegisterRequest{Worker: worker}, &resp); err != nil {
		return "", err
	}
	return resp.Worker, nil
}

// Acquire asks for a shard lease on one experiment. It returns
// ErrComplete when the experiment has no work left and ErrBusy (with
// the server's suggested wait) when every incomplete shard is leased.
func (c *Client) Acquire(ctx context.Context, worker, experiment string) (*collector.AcquireResponse, error) {
	req, err := c.request(ctx, http.MethodPost, collector.PathAcquire, nil,
		collector.AcquireRequest{Worker: worker, Experiment: experiment})
	if err != nil {
		return nil, err
	}
	httpResp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(httpResp)
	switch httpResp.StatusCode {
	case http.StatusOK:
		var resp collector.AcquireResponse
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			return nil, fmt.Errorf("collector client: decoding acquire response: %w", err)
		}
		return &resp, nil
	case http.StatusNoContent:
		return nil, ErrComplete
	case http.StatusConflict:
		return nil, fmt.Errorf("%w (retry in %v): %s", ErrBusy, retryAfter(httpResp), serverError(httpResp))
	default:
		return nil, fmt.Errorf("collector client: acquire: %s", serverError(httpResp))
	}
}

// Snapshot fetches the lease's shard warm-start snapshot: every record
// the server already holds for that shard, keyed for replay.
func (c *Client) Snapshot(ctx context.Context, lease string) (map[string]runstore.Record, error) {
	req, err := c.request(ctx, http.MethodGet, collector.PathSnapshot, url.Values{"lease": {lease}}, nil)
	if err != nil {
		return nil, err
	}
	if c.binary {
		req.Header.Set("Accept", runstore.WireBinaryType)
	}
	httpResp, err := c.doRetry(ctx, controlRetries, func() (*http.Request, error) {
		return req.Clone(ctx), nil
	})
	if err != nil {
		return nil, err
	}
	defer drain(httpResp)
	if httpResp.StatusCode == http.StatusGone ||
		(httpResp.StatusCode == http.StatusConflict && staleLease(httpResp)) {
		return nil, fmt.Errorf("%w: %s", ErrLeaseLost, serverError(httpResp))
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("collector client: snapshot: %s", serverError(httpResp))
	}
	decode := runstore.DecodeWire
	if mediaType(httpResp.Header.Get("Content-Type")) == runstore.WireBinaryType {
		decode = runstore.DecodeWireBinary
	}
	warm := make(map[string]runstore.Record)
	if _, err := decode(httpResp.Body, func(rec runstore.Record) error {
		warm[rec.Key()] = rec
		return nil
	}); err != nil {
		return nil, fmt.Errorf("collector client: snapshot stream: %w", err)
	}
	return warm, nil
}

// Ingest streams one batch of records under the lease. Backpressure
// (429) is retried after the server's hint until ctx ends; a storage
// failure or shutdown (503) is retried the same way but a bounded
// number of times; 410 maps to ErrLeaseLost and 409 to ErrConflict,
// both of which mean: stop.
func (c *Client) Ingest(ctx context.Context, lease string, recs []runstore.Record) error {
	if len(recs) == 0 {
		return nil
	}
	encode, ctype := runstore.EncodeWire, runstore.WireJSONType
	if c.binary {
		encode, ctype = runstore.EncodeWireBinary, runstore.WireBinaryType
	}
	var body bytes.Buffer
	for _, rec := range recs {
		if err := encode(&body, rec); err != nil {
			return err
		}
	}
	payload := body.Bytes()
	req, err := c.request(ctx, http.MethodPost, collector.PathIngest, url.Values{"lease": {lease}}, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ctype)
	req.ContentLength = int64(len(payload))
	// GetBody plus Idempotency-Key are what make the POST replayable:
	// net/http retries a request transparently when a reused keep-alive
	// connection turns out to be dead under it (the server closed it
	// between our requests) only if it can re-materialize the body AND
	// the request is marked idempotent — which an ingest batch is, the
	// store being last-wins. The 429 loop below re-sends through the
	// same GetBody hook instead of rebuilding the request.
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(payload)), nil
	}
	req.Header.Set("Idempotency-Key",
		fmt.Sprintf("%s-%08x-%d", lease, crc32.ChecksumIEEE(payload), len(recs)))
	unavailable := 0
	for {
		httpResp, err := c.doRetry(ctx, ingestRetries, func() (*http.Request, error) {
			attempt := req.Clone(ctx)
			attempt.Body, _ = attempt.GetBody()
			return attempt, nil
		})
		if err != nil {
			return err
		}
		switch httpResp.StatusCode {
		case http.StatusOK:
			drain(httpResp)
			c.met.streamed.Add(int64(len(recs)))
			c.met.ingestBytes.Add(int64(len(payload)))
			c.met.batches.Inc()
			c.log.Debug("ingest batch acknowledged",
				"lease", lease, "records", len(recs), "bytes", len(payload))
			return nil
		case http.StatusTooManyRequests:
			wait := retryAfter(httpResp)
			drain(httpResp)
			c.met.waits.Inc()
			c.met.waitMs.Add(wait.Milliseconds())
			c.log.Debug("ingest backpressured, honoring Retry-After",
				"lease", lease, "wait", wait)
			select {
			case <-time.After(wait):
				continue // the batch is re-sent whole; the store is last-wins
			case <-ctx.Done():
				return ctx.Err()
			}
		case http.StatusServiceUnavailable:
			// The server could not store the batch — shutting down, or the
			// append/fsync failed under it. The batch is idempotent, so
			// retry after the hint; bounded, unlike the 429 loop, because a
			// daemon that stays broken (disk full) must surface, not spin.
			unavailable++
			wait := retryAfter(httpResp)
			msg := serverError(httpResp)
			drain(httpResp)
			if unavailable > ingestRetries {
				return fmt.Errorf("collector client: ingest: %s", msg)
			}
			c.met.retries.Inc()
			c.log.Debug("ingest unavailable, retrying",
				"lease", lease, "attempt", unavailable, "wait", wait)
			select {
			case <-time.After(wait):
				continue
			case <-ctx.Done():
				return ctx.Err()
			}
		case http.StatusGone:
			msg := serverError(httpResp)
			drain(httpResp)
			return fmt.Errorf("%w: %s", ErrLeaseLost, msg)
		case http.StatusConflict:
			stale := staleLease(httpResp)
			msg := serverError(httpResp)
			drain(httpResp)
			if stale {
				return fmt.Errorf("%w: %s", ErrLeaseLost, msg)
			}
			return fmt.Errorf("%w: %s", ErrConflict, msg)
		default:
			msg := serverError(httpResp)
			drain(httpResp)
			return fmt.Errorf("collector client: ingest: %s", msg)
		}
	}
}

// Renew extends the lease by the server's TTL; ErrLeaseLost means the
// shard has already moved on.
func (c *Client) Renew(ctx context.Context, lease string) error {
	err := c.postJSON(ctx, collector.PathRenew, collector.RenewRequest{Lease: lease}, &collector.RenewResponse{})
	return err
}

// Release returns the shard: complete (done for good) or abandoned
// (back to the pool, warm).
func (c *Client) Release(ctx context.Context, lease string, complete bool) error {
	return c.postJSON(ctx, collector.PathRelease, collector.ReleaseRequest{Lease: lease, Complete: complete}, nil)
}

// Status fetches the collector's live control-plane view.
func (c *Client) Status(ctx context.Context) (*collector.StatusResponse, error) {
	req, err := c.request(ctx, http.MethodGet, collector.PathStatus, nil, nil)
	if err != nil {
		return nil, err
	}
	httpResp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(httpResp)
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("collector client: status: %s", serverError(httpResp))
	}
	var resp collector.StatusResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("collector client: decoding status: %w", err)
	}
	return &resp, nil
}

// request builds one protocol request; a non-nil body is JSON-encoded.
func (c *Client) request(ctx context.Context, method, path string, query url.Values, body any) (*http.Request, error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("collector client: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, fmt.Errorf("collector client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

// Transport-retry policy: how many times an idempotent request is
// re-sent after a transport error (connection refused or reset — the
// signature of a restarting daemon), with exponential backoff between
// attempts. The total window (~6s at the ingest depth) comfortably
// covers a daemon kill-and-restart, which is exactly the outage the
// durable control state makes survivable: when the daemon comes back it
// has resumed the lease, and the retried request lands as if nothing
// happened.
const (
	transportRetryBase = 100 * time.Millisecond
	transportRetryCap  = 2 * time.Second
	ingestRetries      = 8
	controlRetries     = 4
)

// doRetry issues a request, rebuilding it via build for each attempt,
// and retries transport errors up to attempts times with exponential
// backoff. HTTP responses of any status are returned to the caller —
// only failures to get a response at all are retried, which is safe
// precisely because every request in this protocol is idempotent
// (last-wins stores, TTL renewals, at-least-once release).
func (c *Client) doRetry(ctx context.Context, attempts int, build func() (*http.Request, error)) (*http.Response, error) {
	backoff := transportRetryBase
	for attempt := 1; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			return resp, nil
		}
		if attempt >= attempts || ctx.Err() != nil {
			return nil, err
		}
		c.met.retries.Inc()
		c.log.Debug("transport error, retrying", "attempt", attempt, "backoff", backoff, "err", err)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		backoff = min(backoff*2, transportRetryCap)
	}
}

// staleLease reports whether a 409 marks a lease from a previous daemon
// epoch (collector.HeaderStaleLease) — semantically a lost lease, not a
// conflict.
func staleLease(resp *http.Response) bool {
	return resp.Header.Get(collector.HeaderStaleLease) != ""
}

// postJSON posts one JSON request and decodes a 2xx JSON response into
// out (out nil or a 204 skips decoding). 410 — and a stale-lease 409
// from a restarted daemon — map to ErrLeaseLost. Transport errors are
// retried briefly (the requests are idempotent), bridging a daemon
// restart without surfacing it to the control flow above.
func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	httpResp, err := c.doRetry(ctx, controlRetries, func() (*http.Request, error) {
		return c.request(ctx, http.MethodPost, path, nil, body)
	})
	if err != nil {
		return err
	}
	defer drain(httpResp)
	switch {
	case httpResp.StatusCode == http.StatusGone,
		httpResp.StatusCode == http.StatusConflict && staleLease(httpResp):
		return fmt.Errorf("%w: %s", ErrLeaseLost, serverError(httpResp))
	case httpResp.StatusCode >= 300:
		return fmt.Errorf("collector client: %s: %s", path, serverError(httpResp))
	}
	if out == nil || httpResp.StatusCode == http.StatusNoContent {
		return nil
	}
	if err := json.NewDecoder(httpResp.Body).Decode(out); err != nil {
		return fmt.Errorf("collector client: decoding %s response: %w", path, err)
	}
	return nil
}

// serverError extracts the server's JSON error body, falling back to
// the HTTP status line.
func serverError(resp *http.Response) string {
	var e collector.ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e); err == nil && e.Error != "" {
		return e.Error
	}
	return resp.Status
}

// Bounds on the honored Retry-After wait: the cap keeps a misconfigured
// (or clock-skewed HTTP-date) hint from parking a worker for an hour,
// the floor keeps a "Retry-After: 0" from turning the backoff loop into
// a hot spin.
const (
	retryAfterCap   = 30 * time.Second
	retryAfterFloor = 10 * time.Millisecond
)

// retryAfter parses the Retry-After hint — both the delta-seconds form
// and the HTTP-date form (RFC 9110 §10.2.3) — defaulting to one second
// when absent or unparsable. The wait is capped at retryAfterCap and
// jittered by ±20%, so a fleet of workers backpressured by the same
// response retries staggered instead of in lockstep, re-stampeding the
// server at the same instant.
func retryAfter(resp *http.Response) time.Duration {
	base := time.Second
	h := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		// "0" is a real hint — retry immediately (modulo the floor) — not
		// an absent header.
		base = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(h); err == nil {
		base = time.Until(t)
	}
	base = min(base, retryAfterCap)
	base = time.Duration(float64(base) * (0.8 + 0.4*rand.Float64()))
	return max(base, retryAfterFloor)
}

// mediaType extracts the bare media type from a Content-Type header,
// tolerating parameters and case. Empty or unparsable values return ""
// — the caller's JSON default applies.
func mediaType(header string) string {
	mt, _, err := mime.ParseMediaType(header)
	if err != nil {
		return ""
	}
	return mt
}

// drain discards and closes a response body so connections are reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
