package client

import (
	"io"
	"log/slog"

	"repro/internal/obs"
)

// clientMetrics holds the worker-side instruments, resolved once per
// Client so the ingest loop never touches the registry.
type clientMetrics struct {
	streamed    *obs.Counter
	ingestBytes *obs.Counter
	batches     *obs.Counter
	waits       *obs.Counter
	waitMs      *obs.Counter
	spooled     *obs.Counter
	retries     *obs.Counter
}

// newClientMetrics registers the worker series in r.
func newClientMetrics(r *obs.Registry) *clientMetrics {
	return &clientMetrics{
		streamed: r.Counter("worker_records_streamed_total",
			"Records acknowledged by the collector's ingest endpoint."),
		ingestBytes: r.Counter("worker_ingest_bytes_total",
			"Wire bytes of acknowledged ingest batches."),
		batches: r.Counter("worker_ingest_batches_total",
			"Ingest batches acknowledged by the collector."),
		waits: r.Counter("worker_backpressure_waits_total",
			"Ingest attempts refused with 429 that the client waited out."),
		waitMs: r.Counter("worker_backpressure_wait_ms_total",
			"Total milliseconds spent honoring Retry-After hints."),
		spooled: r.Counter("worker_spool_records_total",
			"Records appended to the local spool journal before streaming."),
		retries: r.Counter("worker_transport_retries_total",
			"Requests re-sent after a transport error (a restarting or unreachable daemon)."),
	}
}

// discardLogger is the nil-Logger default: structure without output.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// SetMetrics re-registers the client's instruments in r (nil restores
// the process default). Call before any request; the worker wires this
// from Options.Metrics.
func (c *Client) SetMetrics(r *obs.Registry) {
	if r == nil {
		r = obs.Default()
	}
	c.met = newClientMetrics(r)
}

// SetLogger replaces the client's structured logger (nil discards).
func (c *Client) SetLogger(l *slog.Logger) {
	if l == nil {
		l = discardLogger()
	}
	c.log = l
}
