package client

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"

	"repro/internal/runstore"
)

// remoteStore is the runstore.Store a collector worker's scheduler
// executes against — the remote-store adapter. Three layers answer the
// Store contract:
//
//   - durability: every Append lands in a local spool journal (fsynced)
//     before anything crosses the network, so a crashed or disconnected
//     worker always leaves a valid, ordinary runstore journal behind;
//   - collection: appends are tee'd into batches of FlushEvery records
//     and streamed to the collector's ingest endpoint; an acknowledged
//     batch is durable on the server too (at-least-once — a retried
//     batch converges, the stores are last-wins);
//   - warm start: Lookup serves the lease's server-side snapshot
//     (records previous owners collected) before the local journal, so
//     the scheduler replays them through the exact journal warm-start
//     machinery a single-machine resume uses.
//
// Once the lease is lost (the renewer noticed, or ingest answered 410
// or 409), Append fails fast with the cause; the scheduler drains and
// stops cleanly.
type remoteStore struct {
	c     *Client
	ctx   context.Context // the shard run's context, bounds every ingest
	lease string

	mu    sync.Mutex
	local *runstore.Journal
	warm  map[string]runstore.Record
	buf   []runstore.Record
	every int

	streamed atomic.Int64 // records acknowledged by the server
	lost     atomic.Pointer[error]
}

var _ runstore.Store = (*remoteStore)(nil)

// newRemoteStore assembles the adapter around an acquired lease.
func newRemoteStore(ctx context.Context, c *Client, lease, localPath string, warm map[string]runstore.Record, every int) (*remoteStore, error) {
	local, err := runstore.Open(localPath)
	if err != nil {
		return nil, err
	}
	if warm == nil {
		warm = map[string]runstore.Record{}
	}
	if every < 1 {
		every = 32
	}
	return &remoteStore{c: c, ctx: ctx, lease: lease, local: local, warm: warm, every: every}, nil
}

// markLost records why the lease is gone; subsequent Appends fail fast.
func (r *remoteStore) markLost(err error) {
	r.lost.CompareAndSwap(nil, &err)
}

// lostErr returns the recorded loss cause, if any.
func (r *remoteStore) lostErr() error {
	if p := r.lost.Load(); p != nil {
		return *p
	}
	return nil
}

// Lookup implements runstore.Store: the warm server-side snapshot
// first — replaying another worker's collected unit must win over
// re-executing it — then this worker's own spool.
func (r *remoteStore) Lookup(experiment, hash string, replicate int) (runstore.Record, bool) {
	r.mu.Lock()
	rec, ok := r.warm[runstore.Key(experiment, hash, replicate)]
	r.mu.Unlock()
	if ok {
		return rec, true
	}
	return r.local.Lookup(experiment, hash, replicate)
}

// ReplicateCount implements runstore.Store: the contiguous replicate
// prefix present in either layer.
func (r *remoteStore) ReplicateCount(experiment, hash string) int {
	n := 0
	for {
		if _, ok := r.Lookup(experiment, hash, n); !ok {
			return n
		}
		n++
	}
}

// Scan implements runstore.Store over the local spool — the records
// this worker itself executed, in first-appended order. Warm-snapshot
// records are deliberately excluded: they are the previous owner's
// stream, already durable on the server, and a worker artifact (the
// spool journal, merge input) must hold exactly what this worker ran.
func (r *remoteStore) Scan() iter.Seq2[runstore.Record, error] {
	return r.local.Scan()
}

// Append implements runstore.Store: spool locally (durable before
// return), then stream in batches. A full batch flushes inline; an
// ingest refusal (lease lost, conflict) surfaces as the append error,
// which is how the scheduler learns to stop.
func (r *remoteStore) Append(rec runstore.Record) error {
	if err := r.lostErr(); err != nil {
		return fmt.Errorf("collector client: lease %s: %w", r.lease, err)
	}
	rec, err := runstore.NormalizeAppend(rec)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.local.Append(rec); err != nil {
		return err
	}
	r.c.met.spooled.Inc()
	r.buf = append(r.buf, rec)
	if len(r.buf) >= r.every {
		return r.flushLocked()
	}
	return nil
}

// Flush streams whatever the batch buffer holds.
func (r *remoteStore) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

// flushLocked sends the buffered batch. On success the buffer clears;
// on a terminal refusal the loss is recorded so every later Append
// fails fast.
func (r *remoteStore) flushLocked() error {
	if len(r.buf) == 0 {
		return nil
	}
	if err := r.c.Ingest(r.ctx, r.lease, r.buf); err != nil {
		r.markLost(err)
		return fmt.Errorf("collector client: streaming %d record(s): %w", len(r.buf), err)
	}
	r.streamed.Add(int64(len(r.buf)))
	r.buf = nil
	return nil
}

// Streamed returns how many records the server has acknowledged.
func (r *remoteStore) Streamed() int64 { return r.streamed.Load() }

// LocalPath returns the spool journal's file path.
func (r *remoteStore) LocalPath() string { return r.local.Path() }

// Close implements runstore.Store: a final flush (unless the lease is
// already lost — there is nobody to stream to), then the spool closes.
// The spool file stays behind either way; it is the worker's durable
// account of what it ran.
func (r *remoteStore) Close() error {
	var flushErr error
	if r.lostErr() == nil {
		flushErr = r.Flush()
	}
	closeErr := r.local.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
