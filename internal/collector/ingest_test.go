// Internal-package tests for ingest failure classification: a
// server-side storage failure must answer a retryable 503, never the
// terminal 400 a malformed stream earns. These reach into Server.exps
// to break the store under a live lease, which the HTTP-level tests
// cannot.
package collector

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/runstore"
)

// TestIngestStoreFailureAnswers503 closes the experiment's store out
// from under a live lease — the in-process stand-in for a full disk —
// and asserts the ingest answers 503 with a Retry-After hint, in both
// the group-commit and the per-record-fsync append paths.
func TestIngestStoreFailureAnswers503(t *testing.T) {
	for _, tc := range []struct {
		name   string
		window int // CommitWindow sign: 0 group commit (default), -1 per-record
	}{
		{"group-commit", 0},
		{"per-record", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Dir: t.TempDir(), Shards: 1, Metrics: obs.NewRegistry()}
			if tc.window < 0 {
				cfg.CommitWindow = -1
			}
			srv, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			hs := httptest.NewServer(srv)
			defer hs.Close()
			defer srv.Close()

			resp, err := http.Post(hs.URL+PathAcquire, "application/json",
				strings.NewReader(`{"worker":"w1","experiment":"e"}`))
			if err != nil {
				t.Fatal(err)
			}
			var grant AcquireResponse
			if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()

			srv.mu.Lock()
			srv.exps["e"].store.Close()
			srv.mu.Unlock()

			rec := runstore.Record{
				Experiment: "e", Row: 0, Replicate: 0,
				Assignment: map[string]string{"x": "a"},
				Responses:  map[string]float64{"ms": 1},
			}
			var body bytes.Buffer
			if err := runstore.EncodeWire(&body, rec); err != nil {
				t.Fatal(err)
			}
			resp, err = http.Post(fmt.Sprintf("%s%s?lease=%s", hs.URL, PathIngest, grant.Lease),
				runstore.WireJSONType, &body)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("ingest onto a failed store = %d, want 503", resp.StatusCode)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 carries no Retry-After hint")
			}
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, "storing batch") {
				t.Errorf("error %q does not name the storage failure", e.Error)
			}
		})
	}
}
