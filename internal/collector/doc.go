// Package collector is the run-collector daemon: a long-lived HTTP
// service that remote workers stream run records to, multiplexing many
// experiments and many concurrent clients over the persistent stores in
// internal/runstore. It is the scale-out step past internal/sched's
// N-processes-on-one-disk sharding — the processes move to other
// machines, the disk stays here.
//
// The design keeps process/control logic and the data layer separate:
// the collector owns leases, shard assignment, and backpressure;
// everything durable is a plain sharded runstore journal
// (internal/runstore/shardstore), so every existing tool — merge,
// compact, inspect, diff, archive — works on a collected run with no
// collector-specific code. The wire format for records IS the journal's
// line framing (runstore.EncodeWire/DecodeWire), so collected bytes and
// journaled bytes cannot drift.
//
// Control flow, per experiment:
//
//	acquire: a worker asks for work and is granted a lease on one free
//	         shard — an exclusive, TTL-bounded claim. The shard's
//	         existing records (from an earlier run, or a dead worker's
//	         partial stream) are served as a warm-start snapshot, so the
//	         new owner replays them instead of re-executing.
//	ingest:  the worker streams completed records as NDJSON. Appends are
//	         validated against the lease (right experiment, right shard)
//	         and routed through the sharded store; per-experiment
//	         in-flight bytes are bounded, and requests past the bound
//	         get 429 + Retry-After (the backpressure contract).
//	renew:   leases are renewed at a fraction of the TTL. A lease that
//	         expires un-renewed returns its shard to the pool; the next
//	         acquire hands it, warm, to a surviving worker.
//	release: a completed shard leaves the pool for good; when every
//	         shard of an experiment is done, acquire answers 204 and
//	         workers drain away.
//
// Concurrency and durability contract: every handler is safe for
// concurrent use (one mutex guards the control state; the stores carry
// their own locking). A record acknowledged by ingest has been durably
// appended (journal fsync) before the response is written. Delivery is
// at-least-once — a worker that times out re-sends its batch — and the
// stores are last-wins keyed by (experiment, assignment, replicate), so
// deterministic re-sends and crash re-executions converge to the same
// merged bytes; runstore.Merge's conflict report catches the
// non-deterministic rest. Expiry is enforced lazily, at the next touch
// of the lease table, so the server needs no background goroutine and
// tests can drive the clock (Config.Clock).
package collector
