// Restart, epoch, auth, and group-commit coverage: the daemon-hardening
// contract. These tests exercise the durable control state (a second New
// on the same directory resumes workers and leases), the stale-epoch
// 409, the shared-token gate, fsync coalescing, and the inflight-gauge
// regression.
package collector_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/collector/client"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// restartableServer is a collector whose HTTP front end can be torn down
// and rebuilt on the same directory — the in-process stand-in for
// kill -9 plus restart (Server.Close flushes committers but never
// releases leases, so the control-state journal is exactly what a new
// incarnation sees either way).
type restartableServer struct {
	t   *testing.T
	cfg collector.Config
	srv *collector.Server
	hs  *httptest.Server
}

func startRestartable(t *testing.T, mutate func(*collector.Config)) *restartableServer {
	t.Helper()
	cfg := collector.Config{Dir: t.TempDir(), Shards: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	r := &restartableServer{t: t, cfg: cfg}
	r.start()
	t.Cleanup(r.stop)
	return r
}

func (r *restartableServer) start() {
	r.t.Helper()
	srv, err := collector.New(r.cfg)
	if err != nil {
		r.t.Fatal(err)
	}
	r.srv = srv
	r.hs = httptest.NewServer(srv)
}

func (r *restartableServer) stop() {
	if r.hs != nil {
		r.hs.Close()
		r.hs = nil
	}
	if r.srv != nil {
		r.srv.Close()
		r.srv = nil
	}
}

func (r *restartableServer) restart() {
	r.t.Helper()
	r.stop()
	r.start()
}

func (r *restartableServer) client() *client.Client { return client.New(r.hs.URL, nil) }

// TestRestartResumesLeases: a daemon restart must not orphan the fleet.
// The second incarnation replays the control-state journal: the worker
// registration survives, the lease is live under its original id, renew
// and ingest keep working, and the status view reports the bumped epoch.
func TestRestartResumesLeases(t *testing.T) {
	clock := newFakeClock()
	r := startRestartable(t, func(c *collector.Config) {
		c.Clock = clock.Now
		c.LeaseTTL = time.Hour
	})
	ctx := context.Background()
	const exp = "restart exp"

	c := r.client()
	if _, err := c.Register(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	grant, err := c.Acquire(ctx, "w1", exp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(grant.Lease, "lease-1-") {
		t.Fatalf("lease id %q does not carry epoch 1", grant.Lease)
	}
	rec := recordForShard(t, exp, grant.Shard, grant.Shards, 0)
	if err := c.Ingest(ctx, grant.Lease, []runstore.Record{rec}); err != nil {
		t.Fatal(err)
	}

	r.restart()
	c = r.client()

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 {
		t.Errorf("epoch after one restart = %d, want 2", st.Epoch)
	}
	found := false
	for _, w := range st.Workers {
		if w == "w1" {
			found = true
		}
	}
	if !found {
		t.Errorf("worker registration lost across restart: %v", st.Workers)
	}
	if len(st.Experiments) != 1 || st.Experiments[0].Leased != 1 {
		t.Fatalf("lease not resumed: %+v", st.Experiments)
	}
	if got := st.Experiments[0].Leases[0].Lease; got != grant.Lease {
		t.Fatalf("resumed lease id %q, want %q", got, grant.Lease)
	}
	if got := st.Experiments[0].Records; got != 1 {
		t.Errorf("records after restart = %d, want 1 (resumed from the reopened store)", got)
	}

	// The pre-restart worker carries on: renew, ingest, release — all on
	// the old lease id.
	if err := c.Renew(ctx, grant.Lease); err != nil {
		t.Fatalf("renew of resumed lease: %v", err)
	}
	rec2 := recordForShard(t, exp, grant.Shard, grant.Shards, 1)
	if err := c.Ingest(ctx, grant.Lease, []runstore.Record{rec2}); err != nil {
		t.Fatalf("ingest under resumed lease: %v", err)
	}
	warm, err := c.Snapshot(ctx, grant.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != 2 {
		t.Fatalf("snapshot holds %d record(s) across the restart, want 2", len(warm))
	}
	if err := c.Release(ctx, grant.Lease, true); err != nil {
		t.Fatalf("release of resumed lease: %v", err)
	}

	// Completion is durable too: a third incarnation still knows the
	// shard is done.
	r.restart()
	c = r.client()
	st, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 {
		t.Errorf("epoch after two restarts = %d, want 3", st.Epoch)
	}
	if len(st.Experiments) != 1 || st.Experiments[0].Done != 1 {
		t.Fatalf("shard completion lost across restart: %+v", st.Experiments)
	}
}

// TestStaleEpochLease409: a lease id from an earlier incarnation that
// the restart did NOT resume (released before the restart, or never
// granted) answers 409 with the stale-lease marker — distinguishable
// from both the 410 of a current-epoch expiry and the 409 of a sharding
// conflict — and the client maps it to ErrLeaseLost.
func TestStaleEpochLease409(t *testing.T) {
	r := startRestartable(t, nil)
	ctx := context.Background()

	c := r.client()
	grant, err := c.Acquire(ctx, "w1", "stale exp")
	if err != nil {
		t.Fatal(err)
	}
	// Released complete: the state journal remembers the release, so the
	// next incarnation does not resume this lease.
	if err := c.Release(ctx, grant.Lease, false); err != nil {
		t.Fatal(err)
	}
	r.restart()
	c = r.client()

	// Raw wire shape first: 409 + the stale-lease header.
	body := strings.NewReader(fmt.Sprintf(`{"lease":%q}`, grant.Lease))
	resp, err := http.Post(r.hs.URL+collector.PathRenew, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("renew of pre-restart lease = %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get(collector.HeaderStaleLease) == "" {
		t.Errorf("stale-epoch 409 missing the %s marker", collector.HeaderStaleLease)
	}

	// Client mapping: a stale lease is a lost lease, not a conflict.
	if err := c.Renew(ctx, grant.Lease); !errors.Is(err, client.ErrLeaseLost) {
		t.Fatalf("client renew of stale lease = %v, want ErrLeaseLost", err)
	}
	if err := c.Ingest(ctx, grant.Lease, []runstore.Record{testRecord("stale exp", 1, 0)}); !errors.Is(err, client.ErrLeaseLost) {
		t.Fatalf("client ingest under stale lease = %v, want ErrLeaseLost", err)
	}

	// An unknown lease of the CURRENT epoch stays 410 Gone.
	if err := c.Renew(ctx, "lease-2-999"); !errors.Is(err, client.ErrLeaseLost) {
		t.Fatalf("renew of unknown current-epoch lease = %v, want ErrLeaseLost", err)
	}
	resp, err = http.Post(r.hs.URL+collector.PathRenew, "application/json",
		strings.NewReader(`{"lease":"lease-2-999"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("renew of unknown current-epoch lease = %d, want 410", resp.StatusCode)
	}
}

// TestClosedServerRefusesRetryably: an ingest or snapshot that reaches
// a closed daemon must bounce with a retryable 503 before touching the
// drained committers or closing stores — the request a worker retries
// across exactly the daemon-restart window the durable control state
// exists for. Anything else (a terminal 400, a panic on the committer
// channel) kills the worker's run instead of bridging the restart.
func TestClosedServerRefusesRetryably(t *testing.T) {
	r := startRestartable(t, nil)
	ctx := context.Background()
	const exp = "close exp"

	c := r.client()
	grant, err := c.Acquire(ctx, "w1", exp)
	if err != nil {
		t.Fatal(err)
	}
	// One landed batch first, so the shard's committer exists when Close
	// drains it.
	rec := recordForShard(t, exp, grant.Shard, grant.Shards, 0)
	if err := c.Ingest(ctx, grant.Lease, []runstore.Record{rec}); err != nil {
		t.Fatal(err)
	}

	// Close the daemon but leave the HTTP front end up: requests still
	// reach the handlers, as they do in the real teardown race.
	if err := r.srv.Close(); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		name string
		do   func() (*http.Response, error)
	}{
		{"ingest", func() (*http.Response, error) {
			return http.Post(r.hs.URL+collector.PathIngest+"?lease="+grant.Lease, "application/x-ndjson", nil)
		}},
		{"snapshot", func() (*http.Response, error) {
			return http.Get(r.hs.URL + collector.PathSnapshot + "?lease=" + grant.Lease)
		}},
	} {
		resp, err := probe.do()
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		retryHint := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s on closed server = %d, want 503", probe.name, resp.StatusCode)
		}
		if retryHint == "" {
			t.Errorf("%s 503 carries no Retry-After hint", probe.name)
		}
	}
}

// TestSharedTokenAuth: with Config.Token set, every data-plane endpoint
// — the mutating POSTs and the record-streaming snapshot read — refuses
// requests without the bearer token (401), the read-only status and
// metrics surfaces stay open, and a tokened client works end to end.
func TestSharedTokenAuth(t *testing.T) {
	hs, _ := startServer(t, func(c *collector.Config) { c.Token = "s3cret" })
	ctx := context.Background()

	// Bare client: every mutating call bounces.
	bare := client.New(hs.URL, nil)
	if _, err := bare.Register(ctx, "w1"); err == nil || !strings.Contains(err.Error(), "bearer token") {
		t.Fatalf("unauthenticated register = %v, want a bearer-token refusal", err)
	}
	if _, err := bare.Acquire(ctx, "w1", "auth exp"); err == nil || !strings.Contains(err.Error(), "bearer token") {
		t.Fatalf("unauthenticated acquire = %v, want a bearer-token refusal", err)
	}

	// Wrong token: same refusal, same status.
	req, _ := http.NewRequest(http.MethodPost, hs.URL+collector.PathRegister, strings.NewReader(`{}`))
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token = %d, want 401", resp.StatusCode)
	}

	// Read-only surfaces stay open: a dashboard or scraper needs no
	// write credential.
	for _, path := range []string{collector.PathStatus, collector.PathMetrics} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without token = %d, want 200", path, resp.StatusCode)
		}
	}

	// The tokened client runs the whole lease lifecycle.
	authed := client.New(hs.URL, nil)
	authed.SetToken("s3cret")
	grant, err := authed.Acquire(ctx, "w1", "auth exp")
	if err != nil {
		t.Fatal(err)
	}
	rec := recordForShard(t, "auth exp", grant.Shard, grant.Shards, 0)
	if err := authed.Ingest(ctx, grant.Lease, []runstore.Record{rec}); err != nil {
		t.Fatal(err)
	}

	// Snapshot is a data-plane read — it streams the shard's collected
	// record contents — so a live lease id alone (deterministic form,
	// printed in logs) must not unlock it: no token, no records.
	if _, err := bare.Snapshot(ctx, grant.Lease); err == nil || !strings.Contains(err.Error(), "bearer token") {
		t.Fatalf("unauthenticated snapshot of a live lease = %v, want a bearer-token refusal", err)
	}
	warm, err := authed.Snapshot(ctx, grant.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != 1 {
		t.Fatalf("tokened snapshot holds %d record(s), want 1", len(warm))
	}

	if err := authed.Release(ctx, grant.Lease, true); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCoalesces: concurrent ingest batches inside one gather
// window share a single fsync. The coalesced counter is the proof; the
// snapshot is the correctness check (every record still lands).
func TestGroupCommitCoalesces(t *testing.T) {
	reg := obs.NewRegistry()
	hs, c := startServer(t, func(cfg *collector.Config) {
		cfg.Shards = 1
		cfg.Metrics = reg
		cfg.CommitWindow = 50 * time.Millisecond
	})
	_ = hs
	ctx := context.Background()
	const exp = "gc exp"

	grant, err := c.Acquire(ctx, "w1", exp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Ingest(ctx, grant.Lease, []runstore.Record{testRecord(exp, i, 0)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	warm, err := c.Snapshot(ctx, grant.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != n {
		t.Fatalf("snapshot holds %d record(s), want %d", len(warm), n)
	}
	coalesced := reg.Counter("collector_fsync_coalesced_total", "").Value()
	commits := reg.Counter("collector_group_commits_total", "").Value()
	if coalesced < 1 {
		t.Errorf("8 concurrent batches in a 50ms window coalesced %d fsync(s), want >= 1", coalesced)
	}
	if commits < 1 || commits >= n {
		t.Errorf("group commits = %d, want in [1, %d)", commits, n)
	}
	if got := commits + coalesced; got != n {
		t.Errorf("commits (%d) + coalesced (%d) = %d, want %d (every batch accounted once)", commits, coalesced, got, n)
	}
}

// TestInflightGaugeTornBody is the regression test for the inflight
// accounting: an ingest whose body dies mid-stream (declared
// Content-Length never delivered) must release its admission reserve
// exactly once — the gauge returns to zero, never negative, and the
// budget does not leak.
func TestInflightGaugeTornBody(t *testing.T) {
	reg := obs.NewRegistry()
	hs, c := startServer(t, func(cfg *collector.Config) {
		cfg.Shards = 1
		cfg.Metrics = reg
	})
	ctx := context.Background()
	const exp = "torn exp"

	grant, err := c.Acquire(ctx, "w1", exp)
	if err != nil {
		t.Fatal(err)
	}

	gauge := reg.Gauge("collector_inflight_bytes", "")
	for round := 0; round < 3; round++ {
		// A raw connection so the body can be torn: declare 4096 bytes,
		// send a fragment, slam the connection.
		conn, err := net.Dial("tcp", hs.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "POST %s?lease=%s HTTP/1.1\r\nHost: collector\r\nContent-Length: 4096\r\n\r\n",
			collector.PathIngest, grant.Lease)
		io.WriteString(conn, `{"experiment":"torn exp","row":0,`)
		conn.Close()

		deadline := time.Now().Add(5 * time.Second)
		for gauge.Value() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("round %d: inflight gauge stuck at %d after torn body, want 0", round, gauge.Value())
			}
			time.Sleep(5 * time.Millisecond)
		}
		if v := gauge.Value(); v < 0 {
			t.Fatalf("round %d: inflight gauge went negative: %d", round, v)
		}
	}

	// The budget did not leak: a well-formed ingest still lands.
	rec := recordForShard(t, exp, grant.Shard, grant.Shards, 0)
	if err := c.Ingest(ctx, grant.Lease, []runstore.Record{rec}); err != nil {
		t.Fatalf("ingest after torn bodies: %v", err)
	}
	if v := gauge.Value(); v != 0 {
		t.Fatalf("inflight gauge = %d after all requests done, want 0", v)
	}
}
