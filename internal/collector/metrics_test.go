package collector_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/collector/client"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// promSampleRE matches one Prometheus text-format sample line: a metric
// name, an optional {le="..."} label set, and a numeric value.
var promSampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (NaN|[-+]?(Inf|[0-9].*))$`)

// TestMetricsEndpoint is the observability acceptance test: a daemon on
// the process-default registry plus one in-process worker run must leave
// GET /v1/metrics serving a valid Prometheus text snapshot that spans
// the scheduler, the journal, and the collector layers.
func TestMetricsEndpoint(t *testing.T) {
	srv, err := collector.New(collector.Config{Dir: t.TempDir(), Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Close()

	// One real worker run drives every instrumented layer: the per-shard
	// scheduler (sched_*), the spool journal (runstore_*), the client
	// ingest path (worker_*), and the daemon itself (collector_*).
	w, err := client.NewWorker(client.Options{
		URL:        hs.URL,
		Worker:     "obs-worker",
		Workers:    2,
		SpoolDir:   t.TempDir(),
		FlushEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Execute(context.Background(), e2eExperiment(t, 2, nil)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + collector.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	body, ct := readAll(t, resp), resp.Header.Get("Content-Type")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %s", collector.PathMetrics, resp.Status)
	}
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition 0.0.4", ct)
	}

	// Every non-comment line must be a well-formed sample; count the
	// distinct series and the layers they cover.
	series := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed Prometheus sample line %q", line)
		}
		series[m[1]+m[2]] = true
	}
	if len(series) < 12 {
		t.Errorf("/v1/metrics serves %d series, want >= 12:\n%s", len(series), body)
	}
	for _, prefix := range []string{"sched_", "runstore_", "collector_", "worker_"} {
		found := false
		for s := range series {
			if strings.HasPrefix(s, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* series in /v1/metrics:\n%s", prefix, body)
		}
	}

	// The units the worker just ran are visible in the shared registry.
	snap := obs.Default().Snapshot()
	mustPositive(t, snap, "sched_units_executed_total")
	mustPositive(t, snap, "runstore_appends_total")
	mustPositive(t, snap, "collector_ingest_records_total")
	mustPositive(t, snap, "worker_records_streamed_total")

	// The JSON shape is the same snapshot, selected by ?format= or by
	// Accept: application/json.
	for _, req := range []func() (*http.Response, error){
		func() (*http.Response, error) {
			return http.Get(hs.URL + collector.PathMetrics + "?format=json")
		},
		func() (*http.Response, error) {
			r, err := http.NewRequest(http.MethodGet, hs.URL+collector.PathMetrics, nil)
			if err != nil {
				return nil, err
			}
			r.Header.Set("Accept", "application/json")
			return http.DefaultClient.Do(r)
		},
	} {
		resp, err := req()
		if err != nil {
			t.Fatal(err)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal([]byte(readAll(t, resp)), &snap); err != nil {
			t.Fatalf("JSON metrics: %v", err)
		}
		if _, ok := snap.Get("collector_ingest_records_total"); !ok {
			t.Error("JSON snapshot is missing collector_ingest_records_total")
		}
	}

	// An unknown format is a client error, not a silent default.
	resp, err = http.Get(hs.URL + collector.PathMetrics + "?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?format=xml status = %s, want 400", resp.Status)
	}
}

// TestBackpressureMetrics pins the backpressure accounting on both
// sides of the wire: a held ingest pins the in-flight budget, the next
// client batch is refused and waits, and afterwards the server registry
// shows the rejection while the client registry shows the wait.
func TestBackpressureMetrics(t *testing.T) {
	sreg := obs.NewRegistry()
	hs, c := startServer(t, func(cfg *collector.Config) {
		cfg.Shards = 1
		cfg.MaxInflight = 64
		cfg.Metrics = sreg
	})
	creg := obs.NewRegistry()
	c.SetMetrics(creg)
	ctx := context.Background()
	const exp = "busy metrics exp"

	g, err := c.Acquire(ctx, "w", exp)
	if err != nil {
		t.Fatal(err)
	}
	rec := recordForShard(t, exp, 0, 1, 0)
	var line bytes.Buffer
	if err := runstore.EncodeWire(&line, rec); err != nil {
		t.Fatal(err)
	}

	// Request A stalls with its body half-sent, pinning the budget.
	pr, pw := iopipe()
	defer pw.Close()
	reqA, err := http.NewRequest(http.MethodPost, hs.URL+collector.PathIngest+"?lease="+g.Lease, pr)
	if err != nil {
		t.Fatal(err)
	}
	reqA.ContentLength = int64(line.Len())
	doneA := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(reqA)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("request A status %s", resp.Status)
			}
		}
		doneA <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Experiments) == 1 && st.Experiments[0].InflightBytes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request A was never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The client's own Ingest hits the full budget, counts the 429 wait,
	// and retries after the hint; meanwhile A completes and frees the
	// budget, so the retry is admitted.
	doneB := make(chan error, 1)
	go func() {
		doneB <- c.Ingest(ctx, g.Lease, []runstore.Record{recordForShard(t, exp, 0, 1, 1)})
	}()
	for { // wait for the refusal to land before unwedging A
		if m, ok := sreg.Snapshot().Get("collector_ingest_rejected_total"); ok && m.Value >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("the held budget never produced a 429")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := pw.Write(line.Bytes()); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-doneA; err != nil {
		t.Fatal(err)
	}
	if err := <-doneB; err != nil {
		t.Fatal(err)
	}

	mustPositive(t, sreg.Snapshot(), "collector_ingest_rejected_total")
	mustPositive(t, creg.Snapshot(), "worker_backpressure_waits_total")
	mustPositive(t, creg.Snapshot(), "worker_backpressure_wait_ms_total")
	mustPositive(t, creg.Snapshot(), "worker_records_streamed_total")
}

// mustPositive asserts the named series exists in the snapshot with a
// value (or, for histograms, a count) greater than zero.
func mustPositive(t *testing.T, snap obs.Snapshot, name string) {
	t.Helper()
	m, ok := snap.Get(name)
	if !ok {
		t.Errorf("series %s is missing from the snapshot", name)
		return
	}
	if m.Value <= 0 && m.Count <= 0 {
		t.Errorf("series %s = %v (count %d), want > 0", name, m.Value, m.Count)
	}
}

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
