package collector

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runstore/shardstore"
)

// Config configures a collector Server.
type Config struct {
	// Dir is the directory the collected per-experiment sharded stores
	// live in. Required.
	Dir string
	// Shards is the shard-pool size of every experiment — how many
	// workers can execute one experiment concurrently. Values < 1
	// default to 1.
	Shards int
	// LeaseTTL bounds how long a silent worker keeps its shard; an
	// expired lease returns the shard to the pool for a surviving worker
	// to warm-start. 0 defaults to 30s.
	LeaseTTL time.Duration
	// MaxInflight bounds the ingest bytes admitted concurrently per
	// experiment — the backpressure knob. Requests that would exceed it
	// are refused with 429 and a Retry-After. 0 defaults to 8 MiB.
	MaxInflight int64
	// RetryAfter is the wait hinted to a backpressured or shard-starved
	// client. 0 defaults to 1s.
	RetryAfter time.Duration
	// Token, when set, locks every data-plane endpoint (register, lease
	// lifecycle, ingest, and the snapshot read — it streams collected
	// record contents) behind `Authorization: Bearer <Token>`. The
	// control-plane read-only surfaces stay open — status views and
	// metrics scrapes carry no write authority and expose no record
	// data. Empty disables auth (the loopback default).
	Token string
	// CommitWindow bounds how long the group-commit engine gathers
	// concurrent ingest batches before one fsync lands them all. 0
	// defaults to 2ms; negative disables group commit entirely and every
	// record is appended (and fsynced) individually — the pre-group-commit
	// behavior, kept as the benchmark baseline.
	CommitWindow time.Duration
	// CommitMaxBytes closes a gather window early once this many wire
	// bytes are queued, bounding commit latency and memory under burst.
	// 0 defaults to 1 MiB.
	CommitMaxBytes int64
	// Baseline, when set, names a baseline store file (journal or
	// archive): the gate status endpoint compares collected records
	// against it.
	Baseline string
	// Clock is the server's time source; nil means time.Now. Tests
	// drive lease expiry through it.
	Clock func() time.Time
	// Metrics is the registry the daemon's instruments register in; nil
	// means the process-wide obs.Default(), which is what a deployed
	// daemon wants — /v1/metrics then also exposes the runstore and
	// scheduler series of the same process. Tests pass a private
	// registry to assert exact counts.
	Metrics *obs.Registry
	// Logger receives the daemon's structured log; nil discards. The
	// perfeval serve command wires it to stderr at the level chosen by
	// -Dcollector.log.
	Logger *slog.Logger
}

// fill resolves the config's defaults.
func (c *Config) fill() error {
	if c.Dir == "" {
		return fmt.Errorf("collector: Config.Dir is required (the collected stores live there)")
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.CommitWindow == 0 {
		c.CommitWindow = 2 * time.Millisecond
	}
	if c.CommitMaxBytes <= 0 {
		c.CommitMaxBytes = 1 << 20
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.Logger == nil {
		c.Logger = discardLogger()
	}
	return nil
}

// discardLogger is the nil-Logger default: structure without output.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Server is the collector daemon: an http.Handler multiplexing many
// experiments and many concurrent workers over sharded runstore
// journals. Create one with New, serve it with net/http (or
// httptest.NewServer in tests), and Close it when done.
type Server struct {
	cfg Config
	mux *http.ServeMux
	reg *obs.Registry
	met *serverMetrics
	log *slog.Logger

	state *stateLog // durable control state; replayed by New on restart
	epoch int       // this daemon incarnation, embedded in lease ids

	query queryState // lazily-opened warehouse behind GET /v1/query

	mu      sync.Mutex
	workers map[string]struct{}
	exps    map[string]*experiment
	seq     int // lease and worker name sequence
	closed  bool
}

// experiment is one experiment's control state: its sharded store and
// the shard pool leases are granted from.
type experiment struct {
	name       string
	store      *shardstore.Store
	shards     []shardState
	leases     map[string]*lease
	committers []*committer   // lazily started per shard; nil until first ingest
	submits    sync.WaitGroup // in-flight commit submissions, drained by Close
	records    int64
	inflight   int64
}

// shard pool states.
const (
	shardFree = iota
	shardLeased
	shardDone
)

type shardState struct {
	state int
	l     *lease // set iff state == shardLeased
}

// lease is one worker's TTL-bounded exclusive claim on a shard.
type lease struct {
	id      string
	exp     *experiment
	shard   int
	worker  string
	expires time.Time
}

// New returns a Server for cfg. If the directory holds a control-state
// journal from a previous daemon, its worker registrations and live
// leases are resumed — a restarted daemon picks up its fleet where the
// old one left it — and the new incarnation runs at the next epoch, so
// leases the old daemon granted but did not persist as live answer with
// a stale-epoch 409 instead of colliding with fresh grants.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		met:     newServerMetrics(cfg.Metrics),
		log:     cfg.Logger,
		workers: make(map[string]struct{}),
		exps:    make(map[string]*experiment),
	}
	state, events, err := openStateLog(filepath.Join(cfg.Dir, StateFile))
	if err != nil {
		return nil, err
	}
	s.state = state
	lastEpoch, err := s.replayState(events)
	if err != nil {
		state.close()
		return nil, err
	}
	s.epoch = lastEpoch + 1
	if err := state.append(stateEvent{Type: "epoch", Epoch: s.epoch}); err != nil {
		state.close()
		return nil, err
	}
	s.met.workers.Set(int64(len(s.workers)))
	s.met.epoch.Set(int64(s.epoch))
	resumed := 0
	for _, e := range s.exps {
		resumed += len(e.leases)
	}
	if resumed > 0 || len(s.workers) > 0 {
		s.log.Info("control state resumed", "epoch", s.epoch,
			"workers", len(s.workers), "leases", resumed)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, s.auth(s.handleRegister))
	mux.HandleFunc("POST "+PathAcquire, s.auth(s.handleAcquire))
	mux.HandleFunc("POST "+PathRenew, s.auth(s.handleRenew))
	mux.HandleFunc("POST "+PathRelease, s.auth(s.handleRelease))
	mux.HandleFunc("POST "+PathIngest, s.auth(s.handleIngest))
	// Snapshot is a data-plane read — it streams the shard's record
	// contents — so it sits behind the same token as ingest; the lease id
	// alone is no secret (deterministic form, printed in logs).
	mux.HandleFunc("GET "+PathSnapshot, s.auth(s.handleSnapshot))
	mux.HandleFunc("GET "+PathStatus, s.handleStatus)
	mux.HandleFunc("GET "+PathCells, s.handleCells)
	mux.HandleFunc("GET "+PathGate, s.handleGate)
	mux.HandleFunc("GET "+PathMetrics, s.handleMetrics)
	mux.HandleFunc("GET "+PathQuery, s.handleQuery)
	s.mux = mux
	return s, nil
}

// auth wraps a mutating handler behind the shared-token check. With no
// Token configured it is the handler itself — zero cost on the default
// loopback deployment.
func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.Token == "" {
		return h
	}
	want := []byte("Bearer " + s.cfg.Token)
	return func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="collector"`)
			writeError(w, http.StatusUnauthorized, "collector: missing or invalid bearer token")
			return
		}
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains every experiment's group-commit engine — batches already
// acknowledged (or about to be) are durable before their store closes —
// then closes the stores and the control-state journal. In-flight
// handlers racing Close fail their appends loudly (the journals are
// closed), never silently.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	exps := make([]*experiment, 0, len(s.exps))
	for _, e := range s.exps {
		exps = append(exps, e)
	}
	s.mu.Unlock()

	var first error
	for _, e := range exps {
		// No new submissions start after closed is set — handlers check
		// closed under s.mu before entering the submitter group — so wait
		// out those in flight, stop the committers, and only then close
		// the journals. The committer slice is re-read under s.mu: its
		// entries are lazily written by ingest handlers holding the lock,
		// and the closed check alone does not order those writes with
		// this read.
		e.submits.Wait()
		s.mu.Lock()
		committers := make([]*committer, len(e.committers))
		copy(committers, e.committers)
		s.mu.Unlock()
		for _, c := range committers {
			if c != nil {
				close(c.ch)
				<-c.stopped
			}
		}
		if err := e.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.closeWarehouse(); err != nil && first == nil {
		first = err
	}
	if err := s.state.close(); err != nil && first == nil {
		first = err
	}
	return first
}

// experimentLocked returns (creating on first touch) the control state
// for one experiment. Callers hold s.mu.
func (s *Server) experimentLocked(name string) (*experiment, error) {
	if e, ok := s.exps[name]; ok {
		return e, nil
	}
	if s.closed {
		return nil, fmt.Errorf("collector: server is closed")
	}
	st, err := shardstore.Open(s.cfg.Dir, name, s.cfg.Shards)
	if err != nil {
		return nil, err
	}
	e := &experiment{
		name:       name,
		store:      st,
		shards:     make([]shardState, s.cfg.Shards),
		leases:     make(map[string]*lease),
		committers: make([]*committer, s.cfg.Shards),
		// Seed the counter from the reopened store: after a restart the
		// status view must not under-report records already durably
		// collected. A genuinely new experiment opens empty, so this is 0.
		records: int64(st.Len()),
	}
	s.exps[name] = e
	return e, nil
}

// sweepLocked enforces lease expiry lazily: every expired lease is
// dropped and its shard returned to the free pool, where the next
// acquire warm-starts it. Callers hold s.mu.
func (s *Server) sweepLocked(e *experiment, now time.Time) {
	for id, l := range e.leases {
		if now.After(l.expires) {
			e.shards[l.shard] = shardState{state: shardFree}
			delete(e.leases, id)
			s.met.leaseExpired.Inc()
			s.persist(stateEvent{Type: "expire", Lease: id})
			// The handoff must be diagnosable from the daemon log alone:
			// this is the only place a dead worker's shard changes hands.
			s.log.Info("lease expired, shard returned to pool",
				"lease", id, "worker", l.worker,
				"experiment", e.name, "shard", l.shard)
		}
	}
}

// persist journals one control-state event. A write failure cannot fail
// the control operation that caused it — the in-memory state is already
// the truth for this incarnation — so it is logged and the daemon keeps
// serving; what is lost is only fidelity of a later restart's resume.
func (s *Server) persist(ev stateEvent) {
	if err := s.state.append(ev); err != nil {
		s.met.stateErrors.Inc()
		s.log.Error("control-state journal append failed", "type", ev.Type, "err", err)
	}
}

// leaseLocked resolves a live lease id across experiments, sweeping
// expiry first — a lease that expired reads as gone, exactly what its
// (possibly still running) former owner must observe. Callers hold s.mu.
func (s *Server) leaseLocked(id string, now time.Time) (*lease, bool) {
	for _, e := range s.exps {
		s.sweepLocked(e, now)
		if l, ok := e.leases[id]; ok {
			return l, true
		}
	}
	return nil, false
}

// handleRegister announces a worker, assigning a name when none is
// offered. Registration is advisory — acquire registers implicitly —
// but gives fleets stable names for the status view.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("collector: bad register request: %v", err))
		return
	}
	s.mu.Lock()
	if req.Worker == "" {
		s.seq++
		req.Worker = "worker-" + strconv.Itoa(s.epoch) + "-" + strconv.Itoa(s.seq)
	}
	if _, known := s.workers[req.Worker]; !known {
		s.workers[req.Worker] = struct{}{}
		s.persist(stateEvent{Type: "worker", Worker: req.Worker})
	}
	s.met.workers.Set(int64(len(s.workers)))
	s.mu.Unlock()
	s.log.Debug("worker registered", "worker", req.Worker)
	writeJSON(w, http.StatusOK, RegisterResponse{Worker: req.Worker})
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// retryAfterHeader sets the Retry-After hint, rounded to whole seconds.
// A sub-500ms configured wait rounds to "0": the header grammar has no
// finer unit, and the client floors its own retry delay (it never
// hammers), so a daemon tuned for fast turnaround — soak tests, loopback
// fleets — should be allowed to say "soon" instead of a mandatory 1s.
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int((d + 500*time.Millisecond) / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// sortedWorkers snapshots the registered worker names, sorted for a
// deterministic status body. Callers hold s.mu.
func (s *Server) sortedWorkersLocked() []string {
	names := make([]string, 0, len(s.workers))
	for name := range s.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
