package collector

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runstore/shardstore"
)

// Config configures a collector Server.
type Config struct {
	// Dir is the directory the collected per-experiment sharded stores
	// live in. Required.
	Dir string
	// Shards is the shard-pool size of every experiment — how many
	// workers can execute one experiment concurrently. Values < 1
	// default to 1.
	Shards int
	// LeaseTTL bounds how long a silent worker keeps its shard; an
	// expired lease returns the shard to the pool for a surviving worker
	// to warm-start. 0 defaults to 30s.
	LeaseTTL time.Duration
	// MaxInflight bounds the ingest bytes admitted concurrently per
	// experiment — the backpressure knob. Requests that would exceed it
	// are refused with 429 and a Retry-After. 0 defaults to 8 MiB.
	MaxInflight int64
	// RetryAfter is the wait hinted to a backpressured or shard-starved
	// client. 0 defaults to 1s.
	RetryAfter time.Duration
	// Baseline, when set, names a baseline store file (journal or
	// archive): the gate status endpoint compares collected records
	// against it.
	Baseline string
	// Clock is the server's time source; nil means time.Now. Tests
	// drive lease expiry through it.
	Clock func() time.Time
	// Metrics is the registry the daemon's instruments register in; nil
	// means the process-wide obs.Default(), which is what a deployed
	// daemon wants — /v1/metrics then also exposes the runstore and
	// scheduler series of the same process. Tests pass a private
	// registry to assert exact counts.
	Metrics *obs.Registry
	// Logger receives the daemon's structured log; nil discards. The
	// perfeval serve command wires it to stderr at the level chosen by
	// -Dcollector.log.
	Logger *slog.Logger
}

// fill resolves the config's defaults.
func (c *Config) fill() error {
	if c.Dir == "" {
		return fmt.Errorf("collector: Config.Dir is required (the collected stores live there)")
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.Logger == nil {
		c.Logger = discardLogger()
	}
	return nil
}

// discardLogger is the nil-Logger default: structure without output.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Server is the collector daemon: an http.Handler multiplexing many
// experiments and many concurrent workers over sharded runstore
// journals. Create one with New, serve it with net/http (or
// httptest.NewServer in tests), and Close it when done.
type Server struct {
	cfg Config
	mux *http.ServeMux
	reg *obs.Registry
	met *serverMetrics
	log *slog.Logger

	mu      sync.Mutex
	workers map[string]struct{}
	exps    map[string]*experiment
	seq     int // lease and worker name sequence
	closed  bool
}

// experiment is one experiment's control state: its sharded store and
// the shard pool leases are granted from.
type experiment struct {
	name     string
	store    *shardstore.Store
	shards   []shardState
	leases   map[string]*lease
	records  int64
	inflight int64
}

// shard pool states.
const (
	shardFree = iota
	shardLeased
	shardDone
)

type shardState struct {
	state int
	l     *lease // set iff state == shardLeased
}

// lease is one worker's TTL-bounded exclusive claim on a shard.
type lease struct {
	id      string
	exp     *experiment
	shard   int
	worker  string
	expires time.Time
}

// New returns a Server for cfg.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		met:     newServerMetrics(cfg.Metrics),
		log:     cfg.Logger,
		workers: make(map[string]struct{}),
		exps:    make(map[string]*experiment),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, s.handleRegister)
	mux.HandleFunc("POST "+PathAcquire, s.handleAcquire)
	mux.HandleFunc("POST "+PathRenew, s.handleRenew)
	mux.HandleFunc("POST "+PathRelease, s.handleRelease)
	mux.HandleFunc("POST "+PathIngest, s.handleIngest)
	mux.HandleFunc("GET "+PathSnapshot, s.handleSnapshot)
	mux.HandleFunc("GET "+PathStatus, s.handleStatus)
	mux.HandleFunc("GET "+PathCells, s.handleCells)
	mux.HandleFunc("GET "+PathGate, s.handleGate)
	mux.HandleFunc("GET "+PathMetrics, s.handleMetrics)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close closes every experiment store. In-flight handlers racing Close
// fail their appends loudly (the journals are closed), never silently.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, e := range s.exps {
		if err := e.store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// experimentLocked returns (creating on first touch) the control state
// for one experiment. Callers hold s.mu.
func (s *Server) experimentLocked(name string) (*experiment, error) {
	if e, ok := s.exps[name]; ok {
		return e, nil
	}
	if s.closed {
		return nil, fmt.Errorf("collector: server is closed")
	}
	st, err := shardstore.Open(s.cfg.Dir, name, s.cfg.Shards)
	if err != nil {
		return nil, err
	}
	e := &experiment{
		name:   name,
		store:  st,
		shards: make([]shardState, s.cfg.Shards),
		leases: make(map[string]*lease),
	}
	s.exps[name] = e
	return e, nil
}

// sweepLocked enforces lease expiry lazily: every expired lease is
// dropped and its shard returned to the free pool, where the next
// acquire warm-starts it. Callers hold s.mu.
func (s *Server) sweepLocked(e *experiment, now time.Time) {
	for id, l := range e.leases {
		if now.After(l.expires) {
			e.shards[l.shard] = shardState{state: shardFree}
			delete(e.leases, id)
			s.met.leaseExpired.Inc()
			// The handoff must be diagnosable from the daemon log alone:
			// this is the only place a dead worker's shard changes hands.
			s.log.Info("lease expired, shard returned to pool",
				"lease", id, "worker", l.worker,
				"experiment", e.name, "shard", l.shard)
		}
	}
}

// leaseLocked resolves a live lease id across experiments, sweeping
// expiry first — a lease that expired reads as gone, exactly what its
// (possibly still running) former owner must observe. Callers hold s.mu.
func (s *Server) leaseLocked(id string, now time.Time) (*lease, bool) {
	for _, e := range s.exps {
		s.sweepLocked(e, now)
		if l, ok := e.leases[id]; ok {
			return l, true
		}
	}
	return nil, false
}

// handleRegister announces a worker, assigning a name when none is
// offered. Registration is advisory — acquire registers implicitly —
// but gives fleets stable names for the status view.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("collector: bad register request: %v", err))
		return
	}
	s.mu.Lock()
	if req.Worker == "" {
		s.seq++
		req.Worker = "worker-" + strconv.Itoa(s.seq)
	}
	s.workers[req.Worker] = struct{}{}
	s.met.workers.Set(int64(len(s.workers)))
	s.mu.Unlock()
	s.log.Debug("worker registered", "worker", req.Worker)
	writeJSON(w, http.StatusOK, RegisterResponse{Worker: req.Worker})
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// retryAfterHeader sets the Retry-After hint in whole seconds (minimum
// 1 — zero would tell clients to hammer).
func retryAfterHeader(w http.ResponseWriter, d time.Duration) {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// sortedWorkers snapshots the registered worker names, sorted for a
// deterministic status body. Callers hold s.mu.
func (s *Server) sortedWorkersLocked() []string {
	names := make([]string, 0, len(s.workers))
	for name := range s.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
