package collector

import (
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"

	"repro/internal/runstore"
)

// handleIngest streams one batch of records into the lease's shard:
//
//	200 IngestResponse — every record in the batch is durably appended
//	410 — the lease is not live; the worker must stop streaming
//	429 + Retry-After — the experiment's in-flight byte budget is full
//	409 — a record does not belong to the lease (wrong experiment, or
//	      routed to another shard): a worker-side sharding bug that must
//	      fail loudly before it overlaps another worker's data
//	400 — a malformed or truncated stream
//	503 + Retry-After — the server could not store the batch: either it
//	      is shutting down, or the append/fsync itself failed (disk full,
//	      store closed). The batch is well-formed and the store is
//	      last-wins, so the client retries idempotently
//
// Records are validated and appended one at a time, in stream order, so
// a failed batch leaves a clean prefix durably stored; delivery is
// at-least-once and the stores are last-wins, so a retried batch
// converges instead of duplicating.
//
// The body framing is negotiated by Content-Type: runstore.WireBinaryType
// selects the binary frame decoder, anything else — including no header
// at all — is decoded as NDJSON, the canonical fallback every peer
// speaks (docs/COLLECTOR.md).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("lease")
	now := s.cfg.Clock()
	s.mu.Lock()
	// The closed check must precede any committer or submitter-group
	// touch: Close flips closed under this lock and then waits the
	// submitter group out, so an ingest that got the lock after Close
	// must not Add to the group (Add-after-Wait misuse), send on a
	// commit channel Close is about to close, or lazily start a new
	// committer Close will never drain. It answers 503 — retryable —
	// because the worker's next attempt lands on the restarted daemon.
	if s.closed {
		s.mu.Unlock()
		retryAfterHeader(w, s.cfg.RetryAfter)
		writeError(w, http.StatusServiceUnavailable, "collector: server is shutting down")
		return
	}
	l, ok := s.leaseLocked(id, now)
	if !ok {
		status, msg := s.leaseFail(w, id)
		s.mu.Unlock()
		writeError(w, status, msg)
		return
	}
	e := l.exp
	// Backpressure admission: reserve the declared body size against the
	// experiment's in-flight budget. An idle experiment always admits —
	// progress must stay possible whatever MaxInflight is — but a busy
	// one refuses what would overflow, and the client backs off by the
	// Retry-After hint.
	reserve := r.ContentLength
	if reserve < 0 {
		reserve = 0
	}
	if e.inflight > 0 && e.inflight+reserve > s.cfg.MaxInflight {
		inflight := e.inflight
		s.mu.Unlock()
		s.met.ingestReject.Inc()
		s.log.Debug("ingest backpressured", "experiment", e.name,
			"inflight", inflight, "declared", reserve)
		retryAfterHeader(w, s.cfg.RetryAfter)
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("collector: %s: ingest budget full (%d in-flight byte(s))", e.name, inflight))
		return
	}
	e.inflight += reserve
	groupCommit := s.cfg.CommitWindow > 0
	if groupCommit {
		if e.committers[l.shard] == nil {
			e.committers[l.shard] = newCommitter(e.store, s.cfg.CommitWindow, s.cfg.CommitMaxBytes, s.met)
		}
		// Entering the submitter group under the lock pairs with Close,
		// which flips closed first and then waits the group out — so a
		// commit channel is never closed mid-send.
		e.submits.Add(1)
		defer e.submits.Done()
	}
	store, shard, shards := e.store, l.shard, len(e.shards)
	s.mu.Unlock()
	s.met.inflightBytes.Add(reserve)
	// The reserve must be released exactly once on every exit path —
	// decode error, commit error, conflict, success. A released that runs
	// twice (or a path that forgets it) drifts the gauge and, once
	// negative, jams admission open; hence one sync.Once-style closure
	// rather than per-path arithmetic, and a regression test pinning the
	// gauge back at zero after a torn body.
	released := false
	release := func() {
		if released {
			return
		}
		released = true
		s.met.inflightBytes.Add(-reserve)
		s.mu.Lock()
		e.inflight -= reserve
		s.mu.Unlock()
	}
	defer release()

	// Decode outside the control-state lock. With group commit the batch
	// is validated and gathered first, then submitted to the shard's
	// committer as one unit; without it (CommitWindow < 0) each record is
	// appended — and fsynced — as it decodes, the pre-group-commit
	// baseline behavior.
	decode := runstore.DecodeWire
	if wireMediaType(r.Header.Get("Content-Type")) == runstore.WireBinaryType {
		decode = runstore.DecodeWireBinary
	}
	body := &countingReader{r: r.Body}
	var batch []runstore.Record
	n, err := decode(body, func(rec runstore.Record) error {
		if rec.Experiment != e.name {
			return &ingestConflict{fmt.Sprintf("collector: record %s belongs to experiment %q, lease %s owns %q",
				rec.Key(), rec.Experiment, id, e.name)}
		}
		if got := runstore.ShardIndex(rec.Hash, shards); got != shard {
			return &ingestConflict{fmt.Sprintf("collector: record %s routes to shard %d, lease %s owns shard %d of %d",
				rec.Key(), got, id, shard, shards)}
		}
		if groupCommit {
			batch = append(batch, rec)
			return nil
		}
		if aerr := store.Append(rec); aerr != nil {
			return &storeFailure{aerr}
		}
		return nil
	})
	if groupCommit {
		// Commit the decoded records even when the stream failed partway:
		// the valid prefix lands durably, preserving the contract that a
		// failed batch leaves a clean prefix for the retry to converge on.
		if cerr := e.commit(shard, batch, body.n); cerr != nil {
			if err == nil {
				err = &storeFailure{cerr}
			}
			n = 0
		} else {
			n = len(batch)
		}
	}
	s.mu.Lock()
	e.records += int64(n)
	s.mu.Unlock()
	s.met.ingestRecords.Add(int64(n))
	s.met.ingestBytes.Add(body.n)
	release()
	if err != nil {
		var conflict *ingestConflict
		var failed *storeFailure
		switch {
		case errors.As(err, &conflict):
			writeError(w, http.StatusConflict, conflict.msg)
		case errors.As(err, &failed):
			// A server-side storage failure, not a bad request: 400 would
			// read as terminal and kill the worker's run over what may be a
			// transient disk or shutdown hiccup. 503 tells the client to
			// retry the (idempotent) batch.
			retryAfterHeader(w, s.cfg.RetryAfter)
			writeError(w, http.StatusServiceUnavailable, failed.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Appended: n})
}

// wireMediaType extracts the bare media type from a Content-Type or
// Accept header value, tolerating parameters and case per RFC 9110. An
// empty or unparsable value returns "" — which callers treat as "use
// the JSON default".
func wireMediaType(header string) string {
	mt, _, err := mime.ParseMediaType(header)
	if err != nil {
		return ""
	}
	return mt
}

// countingReader counts the bytes actually read from the request body —
// what the ingest byte counter reports, as opposed to the declared
// Content-Length the backpressure budget reserves.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ingestConflict marks a record that does not belong to its lease — the
// one ingest failure that is a worker bug, not a transport hiccup, and
// so maps to 409 rather than 400.
type ingestConflict struct{ msg string }

func (c *ingestConflict) Error() string { return c.msg }

// storeFailure marks an append or group-commit that failed server-side —
// the batch was well-formed but could not be made durable — and so maps
// to a retryable 503 rather than the terminal 400 a malformed stream
// earns.
type storeFailure struct{ err error }

func (f *storeFailure) Error() string {
	return fmt.Sprintf("collector: storing batch: %v", f.err)
}

func (f *storeFailure) Unwrap() error { return f.err }

// handleSnapshot streams the lease's shard as it stands — every record
// earlier owners collected — in the wire framing. It is the warm-start
// feed: the new owner indexes these records and replays them through
// the scheduler's journal warm-start machinery instead of re-executing
// them. The scan snapshots its key set at start (the runstore.Store
// contract), so concurrent ingest on other shards never corrupts it.
//
// The response framing is negotiated by the Accept header — an exact
// runstore.WireBinaryType selects binary frames, anything else NDJSON —
// and the response Content-Type states what was chosen, so a client
// decodes by what the server says, never by what it asked for.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("lease")
	now := s.cfg.Clock()
	s.mu.Lock()
	// Same pairing with Close as handleIngest: once closed is set the
	// stores are about to close under us, so refuse retryably instead of
	// streaming from a journal mid-teardown.
	if s.closed {
		s.mu.Unlock()
		retryAfterHeader(w, s.cfg.RetryAfter)
		writeError(w, http.StatusServiceUnavailable, "collector: server is shutting down")
		return
	}
	l, ok := s.leaseLocked(id, now)
	if !ok {
		status, msg := s.leaseFail(w, id)
		s.mu.Unlock()
		writeError(w, status, msg)
		return
	}
	store, shard, shards := l.exp.store, l.shard, len(l.exp.shards)
	s.mu.Unlock()

	encode := runstore.EncodeWire
	ctype := runstore.WireJSONType
	if wireMediaType(r.Header.Get("Accept")) == runstore.WireBinaryType {
		encode = runstore.EncodeWireBinary
		ctype = runstore.WireBinaryType
	}
	w.Header().Set("Content-Type", ctype)
	for rec, err := range store.Scan() {
		if err != nil {
			// The header is out; all we can do is cut the stream so the
			// truncation is visible to the client's wire decoder.
			return
		}
		if runstore.ShardIndex(rec.Hash, shards) != shard {
			continue
		}
		if err := encode(w, rec); err != nil {
			return
		}
	}
}
