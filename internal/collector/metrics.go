package collector

import (
	"net/http"
	"strings"

	"repro/internal/obs"
)

// serverMetrics holds the daemon's instruments, resolved once in New so
// handlers never touch the registry on the hot path.
type serverMetrics struct {
	ingestRecords  *obs.Counter
	ingestBytes    *obs.Counter
	ingestReject   *obs.Counter
	leaseAcquired  *obs.Counter
	leaseRenewed   *obs.Counter
	leaseReleased  *obs.Counter
	leaseExpired   *obs.Counter
	groupCommits   *obs.Counter
	fsyncCoalesced *obs.Counter
	stateErrors    *obs.Counter
	commitSeconds  *obs.Histogram
	workers        *obs.Gauge
	inflightBytes  *obs.Gauge
	epoch          *obs.Gauge
}

// newServerMetrics registers the collector series in r.
func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		ingestRecords: r.Counter("collector_ingest_records_total",
			"Records durably appended by the ingest endpoint."),
		ingestBytes: r.Counter("collector_ingest_bytes_total",
			"Request body bytes admitted by the ingest endpoint."),
		ingestReject: r.Counter("collector_ingest_rejected_total",
			"Ingest requests refused with 429 by the in-flight byte budget."),
		leaseAcquired: r.Counter("collector_lease_acquired_total",
			"Shard leases granted."),
		leaseRenewed: r.Counter("collector_lease_renewed_total",
			"Lease renewals granted."),
		leaseReleased: r.Counter("collector_lease_released_total",
			"Leases released by their workers (complete or abandoned)."),
		leaseExpired: r.Counter("collector_lease_expired_total",
			"Leases reclaimed by TTL expiry — dead-worker shard handoffs."),
		groupCommits: r.Counter("collector_group_commits_total",
			"Gather windows committed by the group-commit engine (one fsync each per shard journal touched)."),
		fsyncCoalesced: r.Counter("collector_fsync_coalesced_total",
			"Fsyncs avoided by group commit: ingest batches that shared another batch's fsync."),
		stateErrors: r.Counter("collector_state_errors_total",
			"Control-state journal appends that failed (daemon kept serving; restart fidelity degraded)."),
		commitSeconds: r.Histogram("collector_commit_seconds",
			"Ingest batch commit latency: submit to the group-commit engine until its fsync returned.",
			obs.DefBuckets),
		workers: r.Gauge("collector_workers",
			"Workers that have registered with this daemon."),
		inflightBytes: r.Gauge("collector_inflight_bytes",
			"Ingest bytes admitted but not yet fully appended, across experiments."),
		epoch: r.Gauge("collector_epoch",
			"This daemon's incarnation number from the control-state journal."),
	}
}

// handleMetrics serves the server's registry: Prometheus text format by
// default (Content-Type: text/plain; version=0.0.4), JSON when the
// request asks via ?format=json or Accept: application/json. The
// endpoint is read-only and holds no lock beyond the snapshot copy, so
// scraping cannot stall ingest.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "application/json") {
		format = "json"
	}
	switch format {
	case "", "prometheus", "text":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap.WritePrometheus(w)
	case "json":
		writeJSON(w, http.StatusOK, snap)
	default:
		writeError(w, http.StatusBadRequest, "collector: unknown metrics format "+format+" (want prometheus or json)")
	}
}
