package collector

// The collector's control protocol is small JSON request/response
// bodies; the data path (ingest, snapshot) is NDJSON record streams in
// the journal's own line framing (runstore.EncodeWire/DecodeWire). The
// full wire contract — endpoints, status codes, lease semantics, the
// backpressure rule — is documented in docs/COLLECTOR.md; these types
// are its Go shape, shared by the server and the worker client.

// Endpoint paths of the collector protocol.
const (
	// PathRegister announces a worker (POST RegisterRequest).
	PathRegister = "/v1/register"
	// PathAcquire grants a shard lease (POST AcquireRequest).
	PathAcquire = "/v1/lease/acquire"
	// PathRenew extends a live lease (POST RenewRequest).
	PathRenew = "/v1/lease/renew"
	// PathRelease returns a shard, completed or abandoned (POST
	// ReleaseRequest).
	PathRelease = "/v1/lease/release"
	// PathIngest streams NDJSON records under a lease (POST, ?lease=).
	PathIngest = "/v1/ingest"
	// PathSnapshot streams a leased shard's current records as NDJSON
	// (GET, ?lease=) — the warm-start feed.
	PathSnapshot = "/v1/snapshot"
	// PathStatus reports live control state (GET StatusResponse).
	PathStatus = "/v1/status"
	// PathCells reports per-cell replicate counts (GET, ?experiment=).
	PathCells = "/v1/status/cells"
	// PathGate gates an experiment against the configured baseline
	// (GET, ?experiment=).
	PathGate = "/v1/status/gate"
	// PathMetrics exposes the server's metrics registry (GET) in the
	// Prometheus text format, or JSON via ?format=json or an
	// Accept: application/json header.
	PathMetrics = "/v1/metrics"
	// PathQuery answers warehouse queries over the collected stores
	// (GET, ?kind=&experiment=&cell=&response=&confidence=&tolerance=
	// &limit=). The response body is the warehouse query Result —
	// identical, for the same warehouse, to what `perfeval query`
	// prints as JSON; both run the same internal/warehouse core.
	PathQuery = "/v1/query"
)

// HeaderStaleLease marks a 409 response caused by a lease id from an
// earlier daemon epoch (the daemon restarted and did not resume the
// lease). It lets a client tell "your lease is permanently gone —
// re-acquire" apart from the other 409, a record-routing conflict that
// is a worker-side sharding bug.
const HeaderStaleLease = "X-Collector-Stale-Lease"

// RegisterRequest announces a worker to the collector. An empty Worker
// asks the server to assign a name.
type RegisterRequest struct {
	Worker string `json:"worker,omitempty"`
}

// RegisterResponse returns the worker's (possibly server-assigned) name.
type RegisterResponse struct {
	Worker string `json:"worker"`
}

// AcquireRequest asks for a shard lease on one experiment.
type AcquireRequest struct {
	Worker     string `json:"worker"`
	Experiment string `json:"experiment"`
}

// AcquireResponse grants a lease: an exclusive TTL-bounded claim on one
// shard of the experiment's pool. The worker must run only the design
// rows runstore.ShardIndex routes to Shard, renew well inside the TTL,
// and release when the shard's budget is complete.
type AcquireResponse struct {
	Lease     string `json:"lease"`
	Shard     int    `json:"shard"`
	Shards    int    `json:"shards"`
	TTLMillis int64  `json:"ttl_ms"`
}

// RenewRequest extends a live lease by the server's TTL.
type RenewRequest struct {
	Lease string `json:"lease"`
}

// RenewResponse acknowledges a renewal.
type RenewResponse struct {
	TTLMillis int64 `json:"ttl_ms"`
}

// ReleaseRequest returns a shard to the server: Complete marks it done
// (it leaves the pool); otherwise it returns to the free pool for
// another worker to pick up warm.
type ReleaseRequest struct {
	Lease    string `json:"lease"`
	Complete bool   `json:"complete"`
}

// IngestResponse acknowledges one ingest batch; every acknowledged
// record is durably stored.
type IngestResponse struct {
	Appended int `json:"appended"`
}

// ErrorResponse is the JSON body of every non-2xx collector response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatusResponse is the collector's live control-plane view. Epoch is
// the daemon's incarnation number: it increments on every restart, and
// lease ids carry the epoch that granted them, so a fleet can tell "the
// daemon I knew" from "its successor" without any other signal.
type StatusResponse struct {
	Epoch       int                `json:"epoch"`
	Workers     []string           `json:"workers"`
	Experiments []ExperimentStatus `json:"experiments"`
}

// ExperimentStatus is one experiment's shard pool and traffic counters.
type ExperimentStatus struct {
	Experiment    string        `json:"experiment"`
	Shards        int           `json:"shards"`
	Free          int           `json:"free"`
	Leased        int           `json:"leased"`
	Done          int           `json:"done"`
	Records       int64         `json:"records"`        // records ingested since serve start
	InflightBytes int64         `json:"inflight_bytes"` // ingest bytes currently admitted
	Leases        []LeaseStatus `json:"leases,omitempty"`
}

// LeaseStatus is one live lease.
type LeaseStatus struct {
	Lease     string `json:"lease"`
	Worker    string `json:"worker"`
	Shard     int    `json:"shard"`
	ExpiresIn int64  `json:"expires_in_ms"`
}

// CellStatus is one design cell's replicate spend as stored so far —
// the live per-cell budget view.
type CellStatus struct {
	Assignment string `json:"assignment"`
	Hash       string `json:"hash"`
	Replicates int    `json:"replicates"`
}

// CellsResponse reports an experiment's per-cell replicate counts from a
// snapshot-at-start scan of its store.
type CellsResponse struct {
	Experiment string       `json:"experiment"`
	Records    int          `json:"records"`
	Cells      []CellStatus `json:"cells"`
}

// GateResponse is the regression-gate verdict of the collected records
// against the server's configured baseline store.
type GateResponse struct {
	Experiment string        `json:"experiment"`
	OK         bool          `json:"ok"`
	Regressed  int           `json:"regressed"`
	Verdicts   []GateVerdict `json:"verdicts"`
	Report     string        `json:"report"` // the house-style gate table
}

// GateVerdict is one gated (assignment, response) cell.
type GateVerdict struct {
	Assignment string  `json:"assignment"`
	Response   string  `json:"response"`
	Verdict    string  `json:"verdict"`
	DeltaPct   float64 `json:"delta_pct"`
}
