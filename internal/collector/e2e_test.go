package collector_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/collector/client"
	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/runstore/shardstore"
	"repro/internal/sched"
)

// e2eExperiment mirrors the scheduler tests' 2^2 x reps design whose
// response depends only on (assignment, replicate): any execution
// order — single process, sharded, or collected from a fleet — must
// yield identical records.
func e2eExperiment(t *testing.T, reps int, run harness.RunFunc) *harness.Experiment {
	t.Helper()
	d, err := design.TwoLevelFull([]design.Factor{
		design.MustFactor("memory", "4MB", "16MB"),
		design.MustFactor("cache", "1KB", "2KB"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Replicates = reps
	if run == nil {
		run = e2eRunner
	}
	return &harness.Experiment{
		Name: "collector 2^2", Design: d, Responses: []string{"MIPS"}, Run: run,
	}
}

func e2eRunner(a design.Assignment, rep int) (map[string]float64, error) {
	base := map[string]float64{
		"cache=1KB memory=4MB":  15,
		"cache=2KB memory=4MB":  25,
		"cache=1KB memory=16MB": 45,
		"cache=2KB memory=16MB": 75,
	}[a.String()]
	if base == 0 {
		return nil, fmt.Errorf("unknown assignment %s", a)
	}
	return map[string]float64{"MIPS": base + float64(rep)*0.25}, nil
}

// referenceJournal runs the experiment in-process on one worker and
// returns the compacted single-process journal bytes — the ground truth
// every distributed execution must reproduce exactly.
func referenceJournal(t *testing.T, reps int) []byte {
	t.Helper()
	dir := t.TempDir()
	s := sched.New(sched.Options{Workers: 1, JournalDir: dir})
	if _, err := s.Execute(context.Background(), e2eExperiment(t, reps, nil)); err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, runstore.SanitizeName("collector 2^2")+".jsonl")
	dst := filepath.Join(dir, "reference.compact.jsonl")
	if _, err := runstore.Compact(src, dst); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// collectedJournal merges the collector's shard journals and returns the
// compacted bytes.
func collectedJournal(t *testing.T, srvDir string, shards int) []byte {
	t.Helper()
	merged := filepath.Join(t.TempDir(), "merged.jsonl")
	if _, err := runstore.Merge(shardstore.Paths(srvDir, "collector 2^2", shards), merged); err != nil {
		t.Fatal(err)
	}
	compacted := merged + ".compact"
	if _, err := runstore.Compact(merged, compacted); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(compacted)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFleetMergeByteIdentity is the tentpole acceptance test: three
// concurrent workers collect one experiment through the daemon, and the
// merged server-side store is byte-identical to a single-process run.
func TestFleetMergeByteIdentity(t *testing.T) {
	const reps, shards, fleet = 3, 3, 3
	srvDir := t.TempDir()
	srv, err := collector.New(collector.Config{Dir: srvDir, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Close()

	workers := make([]*client.Worker, fleet)
	for i := range workers {
		w, err := client.NewWorker(client.Options{
			URL:         hs.URL,
			Worker:      fmt.Sprintf("fleet-%d", i),
			Workers:     2,
			SpoolDir:    t.TempDir(),
			FlushEvery:  2,
			AcquireWait: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	var wg sync.WaitGroup
	errs := make([]error, fleet)
	for i, w := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = w.Execute(context.Background(), e2eExperiment(t, reps, nil))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Every unit ran exactly once somewhere in the fleet, every record
	// was acknowledged, and every shard was completed by somebody.
	var executed, shardsDone int
	var streamed int64
	for _, w := range workers {
		r := w.Report()
		executed += r.Executed
		shardsDone += r.Shards
		streamed += r.Streamed
	}
	units := 4 * reps
	if executed != units || streamed != int64(units) || shardsDone != shards {
		t.Errorf("fleet executed %d units, streamed %d, completed %d shards; want %d/%d/%d",
			executed, streamed, shardsDone, units, units, shards)
	}

	// The acceptance bar: merged collector output == single-process run,
	// byte for byte.
	want := referenceJournal(t, reps)
	got := collectedJournal(t, srvDir, shards)
	if !bytes.Equal(got, want) {
		t.Errorf("collected store differs from the single-process journal:\ncollected:\n%s\nreference:\n%s", got, want)
	}
}

// collectorCrashEnv carries the collector URL into the child process;
// its presence turns TestCollectorCrashChild into the crash body.
const collectorCrashEnv = "COLLECTOR_CRASH_URL"

// collectorCrashExit is the child's abrupt exit code, checked by the
// parent so an unrelated failure cannot masquerade as the scripted
// crash.
const collectorCrashExit = 42

// TestCollectorCrashChild is the child half of
// TestWorkerCrashLeaseHandoff: re-invoked with COLLECTOR_CRASH_URL set,
// it works the experiment with per-record streaming and dies without
// unwinding — no release, no renewal, no flush — in the middle of the
// fifth unit.
func TestCollectorCrashChild(t *testing.T) {
	url := os.Getenv(collectorCrashEnv)
	if url == "" {
		t.Skip("child-process body for TestWorkerCrashLeaseHandoff")
	}
	count := 0
	run := func(a design.Assignment, rep int) (map[string]float64, error) {
		count++ // Workers: 1, so a single goroutine runs every unit
		if count == 5 {
			os.Exit(collectorCrashExit)
		}
		return e2eRunner(a, rep)
	}
	w, err := client.NewWorker(client.Options{
		URL: url, Worker: "doomed", Workers: 1, FlushEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Execute(context.Background(), e2eExperiment(t, 3, run))
	t.Fatal("child should have died mid-stream")
}

// TestWorkerCrashLeaseHandoff is the distributed crash-injection test:
// a worker in a separate process is killed mid-stream, its lease
// expires, a surviving worker warm-starts the shard from everything the
// dead worker streamed, and the final merged store is byte-identical to
// a single-process run.
func TestWorkerCrashLeaseHandoff(t *testing.T) {
	const reps = 3
	srvDir := t.TempDir()
	srv, err := collector.New(collector.Config{
		Dir:      srvDir,
		Shards:   1,
		LeaseTTL: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	defer srv.Close()

	// The doomed worker runs in its own process so its death severs the
	// stream exactly as a machine loss would: no flush, no release.
	cmd := exec.Command(os.Args[0], "-test.run=^TestCollectorCrashChild$")
	cmd.Env = append(os.Environ(), collectorCrashEnv+"="+hs.URL)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child exited cleanly, want a crash; output:\n%s", out)
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok || exitErr.ExitCode() != collectorCrashExit {
		t.Fatalf("child died with %v, want exit %d; output:\n%s", err, collectorCrashExit, out)
	}

	// The survivor retries acquire until the dead worker's lease expires,
	// then warm-starts: the four streamed units replay, the remaining
	// eight execute.
	w, err := client.NewWorker(client.Options{
		URL:         hs.URL,
		Worker:      "survivor",
		Workers:     1,
		SpoolDir:    t.TempDir(),
		FlushEvery:  1,
		AcquireWait: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Execute(context.Background(), e2eExperiment(t, reps, nil)); err != nil {
		t.Fatal(err)
	}
	r := w.Report()
	if r.Replayed != 4 || r.Executed != 8 {
		t.Errorf("survivor replayed %d and executed %d unit(s), want 4 replayed (the dead worker's stream) and 8 executed", r.Replayed, r.Executed)
	}

	want := referenceJournal(t, reps)
	got := collectedJournal(t, srvDir, 1)
	if !bytes.Equal(got, want) {
		t.Errorf("collected store differs from the single-process journal after the handoff:\ncollected:\n%s\nreference:\n%s", got, want)
	}
}
