package collector_test

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/collector"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/warehouse"
)

// seedQueryDir writes two finished runs of one cell under dir and
// returns the cell's hash.
func seedQueryDir(t *testing.T, dir string) string {
	t.Helper()
	assign := map[string]string{"f": "x"}
	for i, name := range []string{"base.jsonl", "cur.jsonl"} {
		j, err := runstore.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			if err := j.Append(runstore.Record{
				Experiment: "e",
				Replicate:  rep,
				Hash:       runstore.AssignmentHash(assign),
				Assignment: assign,
				Responses:  map[string]float64{"ms": float64(10*(i+1)) + float64(rep)*0.1},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return runstore.AssignmentHash(assign)
}

// TestQueryEndpoint exercises GET /v1/query end to end: the daemon
// indexes its own store directory on demand and serves the warehouse
// query core's answer — the same answer, field for field, that a
// library caller (and therefore `perfeval query`) computes over the
// same directory, because both run the same core.
func TestQueryEndpoint(t *testing.T) {
	dir := t.TempDir()
	hash := seedQueryDir(t, dir)
	srv, err := collector.New(collector.Config{Dir: dir, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })

	get := func(query string) *http.Response {
		t.Helper()
		resp, err := http.Get(hs.URL + collector.PathQuery + query)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := get("?kind=history&experiment=e&cell=" + hash + "&response=ms")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	var got warehouse.Result
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(got.History) != 2 || math.Abs(got.History[0].Mean-10.1) > 1e-9 || math.Abs(got.History[1].Mean-20.1) > 1e-9 {
		t.Fatalf("history over HTTP = %+v", got.History)
	}

	// Parity: a direct warehouse query over the same directory must
	// produce the same answer after a JSON round trip. (The daemon's
	// index file already exists; the library opens the same one.)
	wh, err := warehouse.Open(dir, warehouse.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	if _, err := wh.Refresh(); err != nil {
		t.Fatal(err)
	}
	direct, err := wh.Query(warehouse.Request{Kind: warehouse.KindHistory, Experiment: "e", Cell: hash, Response: "ms"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	var want warehouse.Result
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HTTP answer diverges from the library's:\nhttp:    %+v\nlibrary: %+v", got, want)
	}

	// Regressions over HTTP: base 10.x vs cur 20.x is disjoint.
	resp = get("?kind=regressions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("regressions status = %d", resp.StatusCode)
	}
	var reg warehouse.Result
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(reg.Regressions) != 1 || reg.Regressions[0].CurRun != "cur.jsonl" {
		t.Fatalf("regressions over HTTP = %+v", reg.Regressions)
	}

	// Bad parameters are a client error, not a daemon failure.
	for _, q := range []string{"?kind=bogus", "?kind=history", "?limit=x", "?confidence=x", "?tolerance=x"} {
		resp := get(q)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestQueryEndpointTokenExempt pins the auth contract: /v1/query is a
// read-only aggregate view, open like status and metrics even when the
// data plane requires a bearer token.
func TestQueryEndpointTokenExempt(t *testing.T) {
	dir := t.TempDir()
	seedQueryDir(t, dir)
	srv, err := collector.New(collector.Config{Dir: dir, Token: "secret", Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })

	resp, err := http.Get(hs.URL + collector.PathQuery + "?kind=runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unauthenticated query status = %d, want 200 (read-only views stay open)", resp.StatusCode)
	}
	var got warehouse.Result
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 {
		t.Fatalf("runs = %+v, want both seeded stores", got.Runs)
	}
}
