// Compare example: the paper's "Of apples and oranges" chapter as a
// workflow — compare the two query engines on the same workload while the
// framework checks the comparison is fair (same build mode, same machine,
// same buffer warmth), measures with replication, and decides via
// confidence-interval overlap instead of a bare pair of numbers.
//
// Run with: go run ./examples/compare
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/hwsim"
	"repro/internal/stats"
	"repro/internal/tpch"
	"repro/internal/vdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
}

func run() error {
	db, err := tpch.Gen(0.05, 42)
	if err != nil {
		return err
	}
	q, err := tpch.Q(1)
	if err != nil {
		return err
	}
	machine := hwsim.PentiumM2005

	newCtx := func() *vdb.ExecContext {
		ctx := vdb.NewSimContext(db, &machine, hwsim.NewVirtualClock())
		ctx.Buffers.WarmAll(db.TableNames())
		return ctx
	}

	// First: an UNFAIR comparison, caught before any number is produced.
	unfairA := newCtx()
	unfairB := newCtx()
	unfairB.Mode = hwsim.Debug // colleague B forgot to compile with -O
	fmt.Println("attempting an unfair comparison:")
	for _, issue := range vdb.CheckFairComparison(unfairA, unfairB, db.TableNames()) {
		fmt.Println("  -", issue)
	}

	// Then: the fair one. Same mode, machine, warmth; replicated runs.
	fmt.Println("\nfair comparison of the two engines on Q1 (5 replicates each):")
	measureEngine := func(engine vdb.Engine) ([]float64, error) {
		var samples []float64
		for rep := 0; rep < 5; rep++ {
			ctx := newCtx()
			start := ctx.Clock.Now()
			// Deterministic per-replicate perturbation models run-to-
			// run noise without breaking repeatability.
			ctx.Clock.AdvanceCPU(float64(rep) * 1e4)
			if _, err := vdb.Run(ctx, engine, q.Plan); err != nil {
				return nil, err
			}
			samples = append(samples, float64(ctx.Clock.Now()-start)/float64(time.Millisecond))
		}
		return samples, nil
	}
	rowTimes, err := measureEngine(vdb.RowEngine{})
	if err != nil {
		return err
	}
	colTimes, err := measureEngine(vdb.ColumnEngine{})
	if err != nil {
		return err
	}

	cmp, err := stats.CompareAlternatives(rowTimes, colTimes, 0.95)
	if err != nil {
		return err
	}
	fmt.Printf("  tuple-at-a-time:   %v ms\n", cmp.A)
	fmt.Printf("  column-at-a-time:  %v ms\n", cmp.B)
	fmt.Printf("  verdict: %s\n", cmp.Verdict)
	if cmp.Verdict == stats.BLower {
		fmt.Printf("  speed-up: %.1fx\n", stats.Speedup(cmp.A.Mean, cmp.B.Mean))
	}
	fmt.Println("\ndocument what you did: build mode", unfairA.Mode,
		"| machine", machine.Name, "| buffers hot | last-of-replicates shown as CIs")
	return nil
}
