// Resumable: run an experiment through the concurrent scheduler with a
// persistent run journal, survive a mid-run crash, warm-start the rest,
// and gate the finished run against a stored baseline.
//
// The walkthrough:
//
//  1. a full-factorial design (3 x 3 x 3 replicates = 27 units) over a
//     deterministic simulated workload;
//  2. pass 1 "crashes" partway: the runner fails once a quota of units
//     has completed, leaving a partial journal on disk — exactly what a
//     killed process leaves behind;
//  3. pass 2 reopens the same journal: completed units replay from disk,
//     only the remainder executes;
//  4. the result is saved as a baseline, a "regressed" build is run, and
//     the regression gate flags the cells whose confidence intervals
//     shifted.
//
// Run with: go run ./examples/resumable
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/sched"
)

// simulate is the system under test: a deterministic cost model of a
// scan over a buffer pool, so every (assignment, replicate) pair always
// produces the same number and reruns are comparable.
func simulate(a design.Assignment, rep int, slowdown float64) map[string]float64 {
	size := map[string]float64{"1GB": 1, "10GB": 10, "100GB": 100}[a["data"]]
	buffers := map[string]float64{"64MB": 1.8, "256MB": 1.25, "1GB": 1.0}[a["buffers"]]
	ms := 12.5 * size * buffers * slowdown
	// Deterministic replicate jitter standing in for experimental error.
	ms += float64((rep*7)%3) * 0.05 * size
	return map[string]float64{"ms": ms}
}

func experiment(run harness.RunFunc) (*harness.Experiment, error) {
	d, err := design.FullFactorial([]design.Factor{
		design.MustFactor("data", "1GB", "10GB", "100GB"),
		design.MustFactor("buffers", "64MB", "256MB", "1GB"),
	})
	if err != nil {
		return nil, err
	}
	d.Replicates = 3
	return &harness.Experiment{
		Name: "buffer-pool scan", Design: d, Responses: []string{"ms"}, Run: run,
	}, nil
}

func main() {
	dir, err := os.MkdirTemp("", "resumable")
	check(err)
	defer os.RemoveAll(dir)

	// Pass 1: crash after 10 completed units.
	var completed atomic.Int64
	crashing, err := experiment(func(a design.Assignment, rep int) (map[string]float64, error) {
		if completed.Add(1) > 10 {
			return nil, errors.New("simulated crash (process killed)")
		}
		return simulate(a, rep, 1.0), nil
	})
	check(err)
	s1 := sched.New(sched.Options{Workers: 4, JournalDir: dir})
	_, err = s1.Execute(context.Background(), crashing)
	fmt.Printf("pass 1: crashed as scripted (%v)\n", err != nil)

	j, err := runstore.OpenDir(dir, crashing.Name)
	check(err)
	fmt.Printf("journal after crash: %d/%d units at %s\n",
		j.Len(), crashing.Design.TotalExperiments(), filepath.Base(j.Path()))
	check(j.Close())

	// Pass 2: healthy runner over the same journal — completed units
	// replay from disk, only the remainder executes.
	healthy, err := experiment(func(a design.Assignment, rep int) (map[string]float64, error) {
		return simulate(a, rep, 1.0), nil
	})
	check(err)
	s2 := sched.New(sched.Options{Workers: 4, JournalDir: dir})
	rs, err := s2.Execute(context.Background(), healthy)
	check(err)
	st := s2.LastStats()
	fmt.Printf("pass 2: %d replayed from journal, %d executed, %d total\n\n",
		st.Replayed, st.Executed, st.Units)
	fmt.Println(rs.Report())

	// Save the completed run as the baseline.
	baselinePath := filepath.Join(dir, "baseline.json")
	check(runstore.FromResultSet(rs).Save(baselinePath))

	// A "regressed build": the 100GB scans got 40% slower. Run it (no
	// journal — it is a different build) and gate against the baseline.
	regressed, err := experiment(func(a design.Assignment, rep int) (map[string]float64, error) {
		slowdown := 1.0
		if a["data"] == "100GB" {
			slowdown = 1.4
		}
		return simulate(a, rep, slowdown), nil
	})
	check(err)
	rs2, err := sched.New(sched.Options{Workers: 4}).Execute(context.Background(), regressed)
	check(err)

	baseline, err := runstore.LoadSummary(baselinePath)
	check(err)
	report, err := runstore.Gate(baseline, runstore.FromResultSet(rs2), runstore.GateOptions{})
	check(err)
	fmt.Println(report)
	if n := len(report.Regressions()); n > 0 {
		fmt.Printf("gate verdict: FAIL — %d cell(s) regressed\n", n)
	} else {
		fmt.Println("gate verdict: pass")
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "resumable:", err)
		os.Exit(1)
	}
}
