// Sharded: scale an experiment out across disjoint worker processes and
// fold their journals back into one canonical archive.
//
// The walkthrough (all in one process here; in production each worker is
// its own `perfeval run -Dsched.shards=N -Dsched.shard=K` invocation,
// possibly on its own machine):
//
//  1. a 12-cell x 2-replicate design over a deterministic simulated
//     workload;
//  2. three shard workers each execute only the design rows their shard
//     owns (partitioned by assignment hash) and journal into their own
//     shard file — no coordination, no shared locks, disjoint writes;
//  3. runstore.Merge folds the shard files into one canonical journal,
//     reporting any cross-worker conflicts (there are none: the
//     partition is disjoint by construction);
//  4. the merged journal replays through an unsharded scheduler into the
//     full artifact, and its bytes match a single-process run exactly —
//     sharding changes wall-clock, never results.
//
// Run with: go run ./examples/sharded
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/runstore/shardstore"
	"repro/internal/sched"
)

const shards = 3

// simulate is the system under test: a deterministic cost model, so
// shard workers and the single-process reference must agree exactly.
func simulate(a design.Assignment, rep int) (map[string]float64, error) {
	scale := map[string]float64{"1GB": 1, "10GB": 10, "100GB": 100, "1TB": 1000}[a["data"]]
	engine := map[string]float64{"row": 1.6, "column": 1.0, "vector": 0.7}[a["engine"]]
	ms := 12.5 * scale * engine
	ms += float64((rep*7)%3) * 0.05 * scale // deterministic replicate jitter
	return map[string]float64{"ms": ms}, nil
}

func experiment() (*harness.Experiment, error) {
	d, err := design.FullFactorial([]design.Factor{
		design.MustFactor("data", "1GB", "10GB", "100GB", "1TB"),
		design.MustFactor("engine", "row", "column", "vector"),
	})
	if err != nil {
		return nil, err
	}
	d.Replicates = 2
	return &harness.Experiment{
		Name: "scan cost", Design: d, Responses: []string{"ms"}, Run: simulate,
	}, nil
}

func main() {
	dir, err := os.MkdirTemp("", "sharded")
	check(err)
	defer os.RemoveAll(dir)

	// Step 2: one scheduler per shard, each over the same journal dir.
	// Shard k executes only the rows runstore.ShardIndex assigns to it
	// and writes <dir>/scan_cost.shard-k-of-3.jsonl.
	for k := 0; k < shards; k++ {
		e, err := experiment()
		check(err)
		s := sched.New(sched.Options{Workers: 2, JournalDir: dir, Shards: shards, Shard: k})
		_, err = s.Execute(context.Background(), e)
		check(err)
		st := s.LastStats()
		fmt.Printf("worker %d/%d: executed %2d units, skipped %2d owned by other shards\n",
			k, shards, st.Executed, st.Skipped)
	}

	// Step 3: merge the shard files into one canonical journal.
	e, err := experiment()
	check(err)
	merged := filepath.Join(dir, "merged.jsonl")
	ms, err := runstore.Merge(shardstore.Paths(dir, e.Name, shards), merged)
	check(err)
	fmt.Printf("\nmerge: %d shard file(s) -> %d record(s), %d conflict(s)\n",
		ms.Sources, ms.Kept, len(ms.Conflicts))

	// Step 4a: replay the merged journal for the complete artifact —
	// nothing executes, everything restores from disk.
	j, err := runstore.Open(merged)
	check(err)
	s := sched.New(sched.Options{Workers: 2, Store: j})
	rs, err := s.Execute(context.Background(), e)
	check(err)
	check(j.Close())
	st := s.LastStats()
	fmt.Printf("replay: %d replayed, %d executed\n\n", st.Replayed, st.Executed)
	fmt.Println(rs.Report())

	// Step 4b: the merged journal is byte-identical to a single-process
	// single-worker run of the same experiment.
	singleDir := filepath.Join(dir, "single")
	e2, err := experiment()
	check(err)
	_, err = sched.New(sched.Options{Workers: 1, JournalDir: singleDir}).Execute(context.Background(), e2)
	check(err)
	singleData, err := os.ReadFile(filepath.Join(singleDir, runstore.SanitizeName(e.Name)+".jsonl"))
	check(err)
	mergedData, err := os.ReadFile(merged)
	check(err)
	fmt.Printf("merged journal == single-process journal, byte for byte: %v\n",
		bytes.Equal(mergedData, singleData))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sharded:", err)
		os.Exit(1)
	}
}
