// Microbench example: the paper's micro-benchmark recipe — synthetic data
// with controlled distributions and correlation, a selectivity sweep over a
// single operator, and a guideline-conforming chart of the result.
//
// Run with: go run ./examples/microbench
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/microbench"
	"repro/internal/plot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}

func run() error {
	// Controlled data characteristics: a uniform key, a correlated
	// payload, and a Zipf-skewed category.
	spec := microbench.TableSpec{
		Name: "synthetic", Rows: 100000,
		Cols: []microbench.ColSpec{
			{Name: "key", Dist: microbench.Uniform{Lo: 0, Hi: 1}},
			{Name: "payload", CorrelateWith: "key", Corr: microbench.Correlated{Slope: 100, Noise: 5}},
			{Name: "rank", Dist: microbench.Zipf{N: 100, S: 1.1}},
		},
	}
	tab, err := spec.Build(2008)
	if err != nil {
		return err
	}
	key, _ := tab.Column("key")
	payload, _ := tab.Column("payload")
	fmt.Printf("built %d rows; key-payload correlation r = %.4f\n\n",
		tab.NumRows(), microbench.Pearson(key.Floats, payload.Floats))

	// Selectivity sweep over the filter operator.
	sweep := &microbench.Sweep{
		Table: tab, Column: "key",
		Selectivities: []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0},
	}
	points, err := sweep.Run()
	if err != nil {
		return err
	}
	fmt.Println("selectivity sweep (simulated Pentium M, hot):")
	fmt.Printf("%-12s %-10s %s\n", "selectivity", "rows", "user time")
	for _, p := range points {
		fmt.Printf("%-12g %-10d %v\n", p.Selectivity, p.RowsOut, p.User.Round(time.Microsecond))
	}

	chart := microbench.Chart(points, "Filter cost vs selectivity")
	if vs := plot.Lint(chart); len(vs) != 0 {
		return fmt.Errorf("chart violates the paper's guidelines: %v", vs)
	}
	ascii, err := plot.ASCII(chart, 66, 14)
	if err != nil {
		return err
	}
	fmt.Println("\n" + ascii)
	return nil
}
