// Adaptive: run a mixed-variance experiment under the sequential-
// analysis replication controller and compare its spend against the
// fixed rows x replicates budget.
//
// The walkthrough:
//
//  1. a 2x2 design over a deterministic simulated workload where half
//     the cells are nearly noise-free and half jitter by ±20%;
//  2. a fixed-budget run spends 40 replicates on every cell — the
//     stable cells are over-measured, pure waste;
//  3. an adaptive run stops each cell once its 95% confidence interval
//     is within ±5% of the mean (after at least 3 replicates, at most
//     40): stable cells stop at 3, noisy cells run as long as they
//     need;
//  4. a second adaptive run (fresh journal — it measures a different
//     build) is given the first run as a baseline, with one cell
//     artificially slowed 30%: the drifted cell is gate-flagged,
//     scheduled first, and held to a tighter ±2.5% target.
//
// Run with: go run ./examples/adaptive
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/adaptive"
	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/sched"
)

// simulate is deterministic in (assignment, replicate): the hi-noise
// cells jitter by ±20%, the lo-noise cells by ±0.1%.
func simulate(a design.Assignment, rep int, slowdown float64) map[string]float64 {
	amp := 0.001
	if a["noise"] == "hi" {
		amp = 0.2
	}
	scale := map[string]float64{"1GB": 1, "10GB": 10}[a["data"]]
	jitter := math.Sin(float64(rep)*2.399963) * amp
	return map[string]float64{"ms": 100 * scale * (1 + jitter) * slowdown}
}

func experiment(run harness.RunFunc) (*harness.Experiment, error) {
	d, err := design.FullFactorial([]design.Factor{
		design.MustFactor("noise", "lo", "hi"),
		design.MustFactor("data", "1GB", "10GB"),
	})
	if err != nil {
		return nil, err
	}
	d.Replicates = 40 // the fixed budget the controller competes against
	return &harness.Experiment{
		Name: "mixed-variance scan", Design: d, Responses: []string{"ms"}, Run: run,
	}, nil
}

func report(s *sched.Scheduler) {
	st := s.LastStats()
	fmt.Printf("spent %d replicates (%d live, %d replayed) vs fixed budget %d (%.1f%% saved)\n",
		st.Units, st.Executed, st.Replayed, st.FixedBudget,
		(1-float64(st.Units)/float64(st.FixedBudget))*100)
	for _, c := range s.CellStats() {
		fmt.Printf("  run %d  %-22s  %2d reps  %s\n", c.Row+1, c.Assignment, c.Spent(), c.Note)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "adaptive-demo-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	healthy := func(a design.Assignment, rep int) (map[string]float64, error) {
		return simulate(a, rep, 1.0), nil
	}

	// Fixed budget: every cell gets all 40 replicates.
	e, err := experiment(healthy)
	if err != nil {
		return err
	}
	fixed := sched.New(sched.Options{Workers: 4})
	if _, err := fixed.Execute(context.Background(), e); err != nil {
		return err
	}
	fmt.Printf("== fixed budget ==\nspent %d replicates\n\n", fixed.LastStats().Units)

	// Adaptive: same CI quality, paid for only where variance demands.
	newCtrl := func() (*adaptive.Controller, error) {
		return adaptive.New(adaptive.Options{Rel: 0.05, Min: 3, Max: 40})
	}
	ctrl, err := newCtrl()
	if err != nil {
		return err
	}
	e, err = experiment(healthy)
	if err != nil {
		return err
	}
	s := sched.New(sched.Options{Workers: 4, JournalDir: dir, Controller: ctrl})
	rs, err := s.Execute(context.Background(), e)
	if err != nil {
		return err
	}
	fmt.Println("== adaptive ==")
	report(s)

	// Second pass: the first run becomes the baseline and the lo/1GB
	// cell is slowed by 30%. Its running interval drifts off the
	// baseline interval, so the cell gets gate-flagged and held to the
	// tight target.
	baseline := runstore.FromResultSet(rs)
	ctrl2, err := newCtrl()
	if err != nil {
		return err
	}
	if err := ctrl2.AddBaseline(baseline); err != nil {
		return err
	}
	slowed := func(a design.Assignment, rep int) (map[string]float64, error) {
		slowdown := 1.0
		if a["noise"] == "lo" && a["data"] == "1GB" {
			slowdown = 1.3
		}
		return simulate(a, rep, slowdown), nil
	}
	// A fresh journal for the regressed build: mixing builds in one
	// journal would replay stale measurements.
	dir2 := filepath.Join(dir, "regressed")
	e, err = experiment(slowed)
	if err != nil {
		return err
	}
	s2 := sched.New(sched.Options{Workers: 4, JournalDir: dir2, Controller: ctrl2})
	if _, err := s2.Execute(context.Background(), e); err != nil {
		return err
	}
	fmt.Println("\n== adaptive vs baseline, one cell 30% slower ==")
	report(s2)
	return nil
}
