// Archive: convert a finished run's journal into a block-indexed
// archive and warm-start from it in O(index) time.
//
// The JSONL journal is the right format while a run is alive — it is
// append-only, human-readable, and greppable — but it re-parses every
// record into memory on open, which caps warm starts at archives that
// fit the parse budget. The archive store
// (internal/runstore/archivestore) is the long-term home: the same
// records as checksummed binary blocks with interleaved index pages and
// a footer, so reopening costs reading the index, not re-parsing the
// world.
//
// The walkthrough:
//
//  1. a 12-cell x 3-replicate design runs through the concurrent
//     scheduler, journaling every completed unit;
//  2. the journal converts to an archive (runstore.Merge with an .arch
//     destination — the same merge that folds shard files), and the
//     conversion is verified record by record through the archive index;
//  3. a second scheduler run executes against the archive via
//     sched.Options.OpenStore and replays every unit from it — zero live
//     executions, and the archive file is untouched, byte for byte;
//  4. the archive's shape (blocks, index pages, footer) comes from
//     runstore.Inspect, which dispatches on the file format.
//
// Run with: go run ./examples/archive
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/runstore/archivestore"
	"repro/internal/sched"
)

// simulate is the system under test: a deterministic cost model, so the
// journal-backed run and the archive replay must agree exactly.
func simulate(a design.Assignment, rep int) (map[string]float64, error) {
	scale := map[string]float64{"1GB": 1, "10GB": 10, "100GB": 100, "1TB": 1000}[a["data"]]
	engine := map[string]float64{"row": 1.6, "column": 1.0, "vector": 0.7}[a["engine"]]
	ms := 12.5 * scale * engine
	ms += float64((rep*7)%3) * 0.05 * scale // deterministic replicate jitter
	return map[string]float64{"ms": ms}, nil
}

func experiment() (*harness.Experiment, error) {
	d, err := design.FullFactorial([]design.Factor{
		design.MustFactor("data", "1GB", "10GB", "100GB", "1TB"),
		design.MustFactor("engine", "row", "column", "vector"),
	})
	if err != nil {
		return nil, err
	}
	d.Replicates = 3
	return &harness.Experiment{
		Name: "scan cost", Design: d, Responses: []string{"ms"}, Run: simulate,
	}, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "archive example:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "archive-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	e, err := experiment()
	if err != nil {
		return err
	}

	// 1. Live run, journal-backed.
	journalDir := filepath.Join(dir, "journal")
	live := sched.New(sched.Options{Workers: 4, JournalDir: journalDir})
	if _, err := live.Execute(context.Background(), e); err != nil {
		return err
	}
	st := live.LastStats()
	fmt.Printf("live run:      %d unit(s), %d executed, %d replayed\n", st.Units, st.Executed, st.Replayed)

	// 2. Convert the journal to an archive — same Merge that folds
	// shards; the .arch extension selects the archive writer.
	journal := filepath.Join(journalDir, runstore.SanitizeName(e.Name)+".jsonl")
	arch := filepath.Join(dir, "archive", runstore.SanitizeName(e.Name)+archivestore.Ext)
	ms, err := runstore.Merge([]string{journal}, arch)
	if err != nil {
		return err
	}
	fmt.Printf("converted:     %d record(s) -> %s\n", ms.Kept, filepath.Base(arch))

	// Verify the conversion through the archive index, record by record.
	recs, _, err := runstore.MergeRecords([]string{journal})
	if err != nil {
		return err
	}
	a, err := archivestore.Open(arch)
	if err != nil {
		return err
	}
	for _, want := range recs {
		got, ok := a.Lookup(want.Experiment, want.Hash, want.Replicate)
		if !ok || got.Responses["ms"] != want.Responses["ms"] {
			a.Close()
			return fmt.Errorf("verification failed for %s", want.Key())
		}
	}
	a.Close()
	fmt.Printf("verified:      %d index lookup(s) match the journal\n", len(recs))

	before, err := os.ReadFile(arch)
	if err != nil {
		return err
	}

	// 3. Warm-start against the archive: every unit replays, nothing
	// executes, and the file is byte-identical afterwards.
	replay := sched.New(sched.Options{
		Workers:    4,
		JournalDir: filepath.Dir(arch),
		OpenStore: func(d, experiment string) (runstore.Store, error) {
			return archivestore.OpenDir(d, experiment)
		},
	})
	if _, err := replay.Execute(context.Background(), e); err != nil {
		return err
	}
	rst := replay.LastStats()
	fmt.Printf("archive replay: %d unit(s), %d executed, %d replayed\n", rst.Units, rst.Executed, rst.Replayed)
	if rst.Executed != 0 {
		return fmt.Errorf("warm start re-executed %d unit(s)", rst.Executed)
	}
	after, err := os.ReadFile(arch)
	if err != nil {
		return err
	}
	if !bytes.Equal(before, after) {
		return fmt.Errorf("replay mutated the archive")
	}
	fmt.Println("archive file untouched by replay (byte-identical)")

	// 4. The archive's physical shape, via the format-aware Inspect.
	info, err := runstore.Inspect(arch)
	if err != nil {
		return err
	}
	fmt.Printf("inspect:       %d record(s), %d distinct, torn=%v\n               %s\n",
		info.Records, info.Distinct, info.Torn, info.Detail)
	return nil
}
