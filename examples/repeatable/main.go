// Repeatable example: package the whole reproduction as a repeatability
// suite (the paper's checklist: portable, parameterizable, scripted,
// documented), print the generated instructions, then actually run every
// experiment through the suite runner and report the outcome.
//
// Run with: go run ./examples/repeatable
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/paperexp"
	"repro/internal/repeat"
)

type realClock struct{ start time.Time }

func (c realClock) Now() time.Duration { return time.Since(c.start) }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "repeatable:", err)
		os.Exit(1)
	}
}

func run() error {
	suite := paperexp.PaperSuite()
	if err := suite.Validate(); err != nil {
		return err
	}
	fmt.Println(suite.Instructions())

	fmt.Println("executing the suite in-process:")
	report, err := suite.Run(realClock{start: time.Now()}, func(e repeat.Experiment) error {
		_, err := paperexp.Run(context.Background(), e.ID)
		return err
	})
	if err != nil {
		return err
	}
	fmt.Println(report.String())
	if !report.AllOK {
		return fmt.Errorf("suite had failures")
	}
	fmt.Println("every table and figure regenerated successfully — the suite is repeatable.")
	return nil
}
