// TPC-H example: generate the workload, inspect plans with EXPLAIN, run Q1
// hot and cold on both engines with the paper's measurement protocol, and
// print the PROFILE breakdown — the full "CSI" toolchain of the paper's
// planning chapter.
//
// Run with: go run ./examples/tpch [-sf 0.05]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/hwsim"
	"repro/internal/measure"
	"repro/internal/tpch"
	"repro/internal/vdb"
)

func main() {
	sf := flag.Float64("sf", 0.05, "scale factor")
	flag.Parse()
	if err := run(*sf); err != nil {
		fmt.Fprintln(os.Stderr, "tpch:", err)
		os.Exit(1)
	}
}

func run(sf float64) error {
	db, err := tpch.Gen(sf, 42)
	if err != nil {
		return err
	}
	fmt.Printf("generated TPC-H-like catalog at sf=%g:\n", sf)
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		fmt.Printf("  %-10s %8d rows  %9d bytes\n", name, t.NumRows(), t.ByteSize())
	}

	q, err := tpch.Q(1)
	if err != nil {
		return err
	}
	fmt.Printf("\nEXPLAIN Q%d (%s):\n%s\n", q.Num, q.Name, vdb.Explain(q.Plan))

	machine := hwsim.PentiumM2005
	tab := harness.NewTable().Header("engine", "state", "user (ms)", "real (ms)")
	for _, engine := range []vdb.Engine{vdb.RowEngine{}, vdb.ColumnEngine{}} {
		for _, state := range []measure.RunState{measure.Cold, measure.Hot} {
			ctx := vdb.NewSimContext(db, &machine, hwsim.NewVirtualClock())
			target := measure.TargetFuncs{
				ResetFunc: func(s measure.RunState) error {
					if s == measure.Cold {
						ctx.Buffers.FlushAll()
					}
					return nil
				},
				RunFunc: func() error {
					_, err := vdb.Run(ctx, engine, q.Plan)
					return err
				},
			}
			proto := measure.ColdSingle(ctx.Clock)
			if state == measure.Hot {
				proto = measure.Protocol{Clock: ctx.Clock, State: measure.Hot, Warmup: 1, Runs: 3, Pick: measure.PickLast}
			}
			res, err := proto.Run(target)
			if err != nil {
				return err
			}
			tab.Row(engine.Name(), state.String(),
				fmt.Sprintf("%.1f", float64(res.Chosen.User)/float64(time.Millisecond)),
				fmt.Sprintf("%.1f", float64(res.Chosen.Real)/float64(time.Millisecond)))
		}
	}
	fmt.Println("Q1 on the simulated Pentium M laptop (hot = last of three):")
	fmt.Println(tab.String())

	// PROFILE: find out where the time goes.
	ctx := vdb.NewSimContext(db, &machine, hwsim.NewVirtualClock())
	ctx.Buffers.WarmAll(db.TableNames())
	ctx.Profiler = vdb.NewProfiler("column-at-a-time", ctx.Clock)
	if _, err := vdb.Run(ctx, vdb.ColumnEngine{}, q.Plan); err != nil {
		return err
	}
	fmt.Println(ctx.Profiler.String())
	return nil
}
