// Factorial example: the paper's design chapter end to end — the 2^2
// memory/cache worked example, a live allocation-of-variation study on the
// interconnection-network simulator, and a 2^(7-4) fractional screening
// design with its confounding structure.
//
// Run with: go run ./examples/factorial
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "factorial:", err)
		os.Exit(1)
	}
}

func run() error {
	// Part 1: the paper's 2^2 memory/cache example via the harness.
	d, err := design.TwoLevelFull([]design.Factor{
		design.MustFactor("memory", "4MB", "16MB"),
		design.MustFactor("cache", "1KB", "2KB"),
	})
	if err != nil {
		return err
	}
	mips := map[string]float64{
		"cache=1KB memory=4MB":  15,
		"cache=2KB memory=4MB":  25,
		"cache=1KB memory=16MB": 45,
		"cache=2KB memory=16MB": 75,
	}
	rs, err := harness.Execute(context.Background(), &harness.Experiment{
		Name: "workstation MIPS", Design: d, Responses: []string{"MIPS"},
		Run: func(a design.Assignment, _ int) (map[string]float64, error) {
			return map[string]float64{"MIPS": mips[a.String()]}, nil
		},
	})
	if err != nil {
		return err
	}
	fmt.Println("== the paper's 2^2 memory/cache example ==")
	fmt.Println(rs.Report())

	// Part 2: live 2^2 study on the interconnection-network simulator.
	fmt.Println("== live study: network type x address pattern ==")
	factors := []design.Factor{
		design.MustFactor("network", "Crossbar", "Omega"),
		design.MustFactor("pattern", "Random", "Matrix"),
	}
	st, err := design.NewSignTable(factors)
	if err != nil {
		return err
	}
	cfg := netsim.Config{Procs: 16, Cycles: 3000, Think: 1, Seed: 7}
	nets := []netsim.Network{netsim.Crossbar{N: 16}, netsim.Omega{N: 16}}
	pats := []netsim.Pattern{netsim.RandomPattern{}, netsim.MatrixPattern{}}
	y := make([]float64, 4)
	for run := 0; run < 4; run++ {
		m, err := netsim.Simulate(nets[st.LevelIndex(run, 0)], pats[st.LevelIndex(run, 1)], cfg)
		if err != nil {
			return err
		}
		y[run] = m.Throughput
		fmt.Printf("  %-8s %-7s T=%.4f\n", nets[st.LevelIndex(run, 0)].Name(), pats[st.LevelIndex(run, 1)].Name(), m.Throughput)
	}
	ef, err := design.EstimateEffects(st, y)
	if err != nil {
		return err
	}
	fmt.Println("\n" + ef.VariationTable())

	// Two-stage methodology: which factors matter enough to refine?
	important := design.TwoStage{Threshold: 0.05}.ImportantFactors(ef)
	fmt.Print("factors worth a detailed stage-two study: ")
	for i, f := range important {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(f.Name)
	}
	fmt.Println()

	// Part 3: fractional screening design for seven factors in 8 runs.
	fmt.Println("\n== 2^(7-4) screening design ==")
	var seven []design.Factor
	for i := 0; i < 7; i++ {
		seven = append(seven, design.MustFactor(string(rune('A'+i)), "-1", "+1"))
	}
	var gens []design.Generator
	for _, s := range []string{"D=AB", "E=AC", "F=BC", "G=ABC"} {
		g, err := design.ParseGenerator(s)
		if err != nil {
			return err
		}
		gens = append(gens, g)
	}
	fr, err := design.NewFractional(seven, gens)
	if err != nil {
		return err
	}
	fmt.Printf("8 runs instead of 128, resolution %d\n", fr.Resolution())
	fmt.Print(fr.ConfoundingTable())
	return nil
}
