// Memory-wall example: regenerate the paper's famous figure — the elapsed
// time per iteration of SELECT MAX(column) across 1990s machine
// generations — as an ASCII chart, and emit the gnuplot artifacts for a
// publication-quality version.
//
// Run with: go run ./examples/memorywall [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/hwsim"
	"repro/internal/plot"
)

func main() {
	out := flag.String("out", "", "directory to write gnuplot data and script (optional)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "memorywall:", err)
		os.Exit(1)
	}
}

func run(outDir string) error {
	series := hwsim.MemoryWallSeries()
	labels := make([]string, len(series))
	cpu := make([]float64, len(series))
	mem := make([]float64, len(series))
	for i, m := range series {
		c := m.ScanNsPerValue(8)
		labels[i] = fmt.Sprintf("%d %s %.0fMHz", m.Year, m.CPU, m.ClockHz/1e6)
		cpu[i], mem[i] = c.CPUNs, c.MemNs
		fmt.Println(m.Spec())
	}
	fmt.Println()
	chart, err := plot.StackedBar("SELECT MAX(column): elapsed time per iteration",
		labels, cpu, mem, "CPU", "memory", "ns/iter", 78)
	if err != nil {
		return err
	}
	fmt.Println(chart)

	clockGain := series[len(series)-1].ClockHz / series[0].ClockHz
	totalGain := (cpu[0] + mem[0]) / (cpu[len(cpu)-1] + mem[len(mem)-1])
	fmt.Printf("CPU clock improved %.0fx; scan time per value improved only %.1fx.\n", clockGain, totalGain)
	fmt.Println("Research: always question what you see — dissect CPU and memory costs.")

	if outDir == "" {
		return nil
	}
	// Publication artifact: totals as a line chart with gnuplot script.
	pts := make([]plot.Point, len(series))
	for i := range series {
		pts[i] = plot.Point{X: float64(series[i].Year), Y: cpu[i] + mem[i]}
	}
	line := plot.NewLineChart("In-memory scan across machine generations",
		"year of machine", "elapsed time per iteration (ns)",
		plot.Series{Name: "total per-value scan time", Points: pts})
	if vs := plot.Lint(line); len(vs) != 0 {
		return fmt.Errorf("chart violates guidelines: %v", vs)
	}
	data, err := plot.WriteGnuplotData(line)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	dataPath := filepath.Join(outDir, "memorywall.dat")
	scriptPath := filepath.Join(outDir, "memorywall.gnu")
	if err := os.WriteFile(dataPath, []byte(data), 0o644); err != nil {
		return err
	}
	script := plot.GnuplotScript(line, dataPath, filepath.Join(outDir, "memorywall.eps"))
	if err := os.WriteFile(scriptPath, []byte(script), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s; render with: gnuplot %s\n", dataPath, scriptPath, scriptPath)
	return nil
}
