// Quickstart: conduct a complete, methodologically sound performance study
// with the core pipeline — question, factorial design with replication,
// environment specification, analysis, and repeatability packaging.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/measure"
	"repro/internal/repeat"
	"repro/internal/sysinfo"
)

// workload is the system under test: sorting, with the algorithm and the
// input size as factors.
func workload(algorithm string, n int) {
	data := make([]int, n)
	for i := range data {
		data[i] = (i * 2654435761) % n
	}
	switch algorithm {
	case "stdlib":
		sort.Ints(data)
	default: // insertion
		for i := 1; i < len(data); i++ {
			for j := i; j > 0 && data[j] < data[j-1]; j-- {
				data[j], data[j-1] = data[j-1], data[j]
			}
		}
	}
}

func main() {
	// 1. Design: a 2^2 factorial over algorithm x input size, replicated
	//    5 times so experimental error is measured (common mistake #1 is
	//    ignoring it).
	d, err := design.TwoLevelFull([]design.Factor{
		design.MustFactor("algorithm", "insertion", "stdlib"),
		design.MustFactor("size", "2000", "8000"),
	})
	check(err)
	d.Replicates = 5

	// 2. Runner: measured with a real wall clock, hot protocol, median of
	//    three runs per replicate.
	clock := measure.NewRealClock()
	exp := &harness.Experiment{
		Name:      "sorting algorithms",
		Design:    d,
		Responses: []string{"ms"},
		Run: func(a design.Assignment, rep int) (map[string]float64, error) {
			n := 2000
			if a["size"] == "8000" {
				n = 8000
			}
			proto := measure.Protocol{Clock: clock, State: measure.Hot, Warmup: 1, Runs: 3, Pick: measure.PickMedian}
			res, err := proto.Run(measure.TargetFuncs{RunFunc: func() error {
				workload(a["algorithm"], n)
				return nil
			}})
			if err != nil {
				return nil, err
			}
			return map[string]float64{"ms": float64(res.Chosen.Real) / float64(time.Millisecond)}, nil
		},
	}

	// 3. Environment specification at the paper's recommended detail.
	hw := &sysinfo.HWSpec{
		CPUVendor: "generic", CPUModel: "development machine", ClockHz: 2.7e9,
		Caches:   []sysinfo.CacheSpec{{Level: "L2", SizeBytes: 1 << 20}},
		RAMBytes: 8 << 30,
		Disks:    []sysinfo.DiskSpec{{Description: "SSD", SizeBytes: 256 << 30}},
	}
	sw := &sysinfo.SWSpec{OS: "linux", Compiler: "go1.22", Flags: "default",
		Products: []sysinfo.ProductVersion{{Name: "repro", Version: "1.0"}}}

	// 4. Repeatability packaging.
	suite := &repeat.Suite{
		Name:         "quickstart",
		Requirements: []string{"Go 1.22+"},
		Install:      "go build ./...",
		Experiments: []repeat.Experiment{{
			ID: "sorting", Description: "sorting 2^2 study",
			Script: "go run ./examples/quickstart", OutputPath: "stdout",
			ExpectedDuration: 30 * time.Second, Idempotent: true,
		}},
	}

	report, err := core.Conduct(context.Background(), &core.Study{
		Question:   "does the stdlib sort beat insertion sort, and does the gap grow with input size (interaction)?",
		Experiment: exp,
		Hardware:   hw, Software: sw, Suite: suite,
	})
	check(err)
	fmt.Println(report.Text)
	fmt.Printf("methodologically sound: %v\n", report.Sound())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
