package repro

import (
	"strings"
	"testing"

	"repro/internal/paperexp"
)

func TestPublicAPI(t *testing.T) {
	exps := Experiments()
	if len(exps) != 17 {
		t.Fatalf("experiments = %d", len(exps))
	}
	r, err := RunExperiment("t4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "40") {
		t.Error("t4 text missing mean")
	}
	if _, err := RunExperiment("zzz"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestRunAllExperimentsMatchesRegistry(t *testing.T) {
	results, err := RunAllExperiments()
	if err != nil {
		t.Fatal(err)
	}
	reg := paperexp.Registry()
	if len(results) != len(reg) {
		t.Fatalf("results = %d, registry = %d", len(results), len(reg))
	}
	for i, r := range results {
		if r.ID != reg[i].ID {
			t.Errorf("result %d id = %s, want %s", i, r.ID, reg[i].ID)
		}
	}
}
