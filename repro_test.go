package repro

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/paperexp"
)

func TestPublicAPI(t *testing.T) {
	exps := Experiments()
	if len(exps) != 17 {
		t.Fatalf("experiments = %d", len(exps))
	}
	r, err := RunExperiment(context.Background(), "t4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "40") {
		t.Error("t4 text missing mean")
	}
	if _, err := RunExperiment(context.Background(), "zzz"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestRunAllExperimentsMatchesRegistry(t *testing.T) {
	results, err := RunAllExperiments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reg := paperexp.Registry()
	if len(results) != len(reg) {
		t.Fatalf("results = %d, registry = %d", len(results), len(reg))
	}
	for i, r := range results {
		if r.ID != reg[i].ID {
			t.Errorf("result %d id = %s, want %s", i, r.ID, reg[i].ID)
		}
	}
}

// TestRunConfigScheduledJournaledRun drives the library path the CLI is
// built on: a configured Run journals under JournalDir, a re-run
// warm-starts from it, and Open serves the journal's records back.
func TestRunConfigScheduledJournaledRun(t *testing.T) {
	dir := t.TempDir()
	cfg := RunConfig{Workers: 2, JournalDir: dir}
	if banner := cfg.Describe(); !strings.Contains(banner, "2 workers") || !strings.Contains(banner, dir) {
		t.Errorf("Describe = %q", banner)
	}
	cold, err := Run(context.Background(), "t4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Budget != nil {
		t.Error("fixed-budget run should carry no Budget")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(files) != 1 {
		t.Fatalf("journal files = %v (err %v)", files, err)
	}
	before, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}

	warm, err := Run(context.Background(), "t4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Result.Text != cold.Result.Text {
		t.Error("warm artifact differs from cold")
	}
	after, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("warm re-run appended to the journal")
	}

	st, err := Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Info().Torn {
		t.Error("fresh journal reports torn")
	}
	recs, err := st.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != st.Info().Distinct || len(recs) == 0 {
		t.Errorf("Open: %d records vs info %+v", len(recs), st.Info())
	}
	n := 0
	for rec, err := range st.Scan() {
		if err != nil {
			t.Fatal(err)
		}
		if rec.Key() != recs[n].Key() {
			t.Errorf("Scan order diverges from Records at %d", n)
		}
		n++
	}
	if n != len(recs) {
		t.Errorf("Scan yielded %d, Records %d", n, len(recs))
	}
}

// TestRunAdaptiveBudget runs t4 adaptively and checks the Outcome
// carries an itemized budget.
func TestRunAdaptiveBudget(t *testing.T) {
	out, err := Run(context.Background(), "t4", RunConfig{Adaptive: &AdaptiveConfig{Min: 2, Max: 5}})
	if err != nil {
		t.Fatal(err)
	}
	b := out.Budget
	if b == nil || len(b.Cells) != 4 {
		t.Fatalf("budget = %+v, want 4 cells", b)
	}
	if b.Units != 8 { // t4 is noise-free: every cell stops at min=2
		t.Errorf("units = %d, want 8", b.Units)
	}
	if !strings.Contains(b.String(), "adaptive budget report") {
		t.Errorf("budget report = %q", b.String())
	}
	// t4's fixed budget is 4 x 1 replicate; the adaptive floor of 2
	// overspends it, and Saved must say so rather than flatter the run.
	if b.FixedBudget != 4 || b.Saved() != 1-float64(b.Units)/float64(b.FixedBudget) {
		t.Errorf("fixed budget %d saved %v", b.FixedBudget, b.Saved())
	}
}

// TestRunConfigValidation covers library-level config validation —
// the checks that back the CLI's flag errors.
func TestRunConfigValidation(t *testing.T) {
	ctx := context.Background()
	for _, cfg := range []RunConfig{
		{Store: StoreArchive},            // archive store needs JournalDir
		{Store: StoreJournal},            // explicit journal store needs JournalDir too
		{Store: "bolt", JournalDir: "x"}, // unknown backend
		{Shards: 2, Shard: 0},            // sharding needs JournalDir
		{Shards: 2, Shard: 0, JournalDir: "x", Adaptive: &AdaptiveConfig{}}, // sharding x adaptive
		{Store: StoreArchive, JournalDir: "x", Shards: 2},                   // sharding x archive
		{Adaptive: &AdaptiveConfig{Rel: -0.1}},                              // bad target
		{Adaptive: &AdaptiveConfig{Baseline: "absent-baseline-file.jsonl"}}, // unreadable baseline
	} {
		if _, err := Run(ctx, "t4", cfg); err == nil {
			t.Errorf("Run with %+v should error", cfg)
		}
	}
}

// TestMergeCompactConvertInspect walks the public tooling surface over
// a journal produced through the public Run path.
func TestMergeCompactConvertInspect(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), "t4", RunConfig{Workers: 1, JournalDir: dir}); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if len(files) != 1 {
		t.Fatalf("journal files = %v", files)
	}
	src := files[0]

	merged := filepath.Join(dir, "merged.jsonl")
	ms, err := Merge(merged, src)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Kept == 0 || len(ms.Conflicts) != 0 {
		t.Errorf("merge stats = %+v", ms)
	}
	if _, err := Compact(merged, ""); err != nil {
		t.Fatal(err)
	}

	arch := filepath.Join(dir, "baseline"+ArchiveExt)
	cs, err := Convert(arch, []string{merged}, true)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Verified != ms.Kept || !strings.Contains(cs.Detail, "footer ok") {
		t.Errorf("convert stats = %+v", cs)
	}
	info, err := Inspect(arch)
	if err != nil {
		t.Fatal(err)
	}
	if info.Distinct != ms.Kept || info.Torn {
		t.Errorf("inspect = %+v", info)
	}

	// The archive and the journal serve identical record sets through
	// the same streaming API.
	a, err := Open(arch)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := a.Records()
	if err != nil {
		t.Fatal(err)
	}
	j, err := Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := j.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(ar) != len(jr) {
		t.Fatalf("archive %d records, journal %d", len(ar), len(jr))
	}

	// Diff of a store against itself gates clean.
	d, err := Diff(merged, arch, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed() {
		t.Errorf("self-diff failed: %+v", d)
	}
}
